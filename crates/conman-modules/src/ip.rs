//! The IPv4 protocol module.
//!
//! A device may contain several IP modules: the paper's Figure 4(b) shows a
//! customer-facing IP module (a "virtual router" in the customer's address
//! domain) and an ISP-facing IP module on the edge routers.  The module
//! resolves everything address-related itself — it exchanges addresses with
//! its peer IP modules through `listFieldsAndValues` relayed by the NM, and
//! turns the NM's abstract pipe/switch primitives into routes, policy rules
//! and (for IP-IP paths) tunnel state in the simulated data plane.

use conman_core::abstraction::{
    CounterSnapshot, Dependency, FilterCapability, FilterClassifier, ModuleAbstraction, SwitchKind,
};
use conman_core::ids::{ModuleKind, ModuleRef, PipeId};
use conman_core::module::{ModuleCtx, ModuleError, ModuleReaction, ProtocolModule};
use conman_core::primitives::{
    ComponentRef, EnvelopeKind, FilterSpec, ModuleActual, ModuleEnvelope, PipeSpec, SwitchSpec,
};
use netsim::config::{FilterAction, FilterRule, TunnelConfig};
use netsim::ipv4::Ipv4Cidr;
use netsim::mpls::NhlfeKey;
use netsim::route::{PolicyRule, Route, RouteTableId, RouteTarget, RuleSelector};
use netsim::stats::DropReason;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Which end of a pipe this module is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Upper,
    Lower,
}

#[derive(Debug, Clone)]
struct PipeRec {
    spec: PipeSpec,
    role: Role,
    /// Peer address learnt for this pipe (next hop or remote tunnel endpoint).
    learned: Option<Ipv4Addr>,
    /// Has the peer exchange for this pipe been initiated?
    query_sent: bool,
}

/// How a pipe reaches the next device: a raw Ethernet adjacency or an MPLS
/// LSP entry installed by the MPLS module on the same device.
#[derive(Debug, Clone, Copy)]
enum Attachment {
    /// Ethernet adjacency: egress port plus the peer's learnt address.
    Adjacency { port: u32, nexthop: Ipv4Addr },
    /// LSP access point: the push NHLFE and the port it transmits on.
    Mpls { key: NhlfeKey, port: u32 },
}

impl Attachment {
    fn port(&self) -> u32 {
        match self {
            Attachment::Adjacency { port, .. } | Attachment::Mpls { port, .. } => *port,
        }
    }

    fn target(&self) -> RouteTarget {
        match self {
            Attachment::Adjacency { port, nexthop } => RouteTarget::Port {
                port: *port,
                via: Some(*nexthop),
            },
            Attachment::Mpls { key, .. } => RouteTarget::Mpls { nhlfe: *key },
        }
    }
}

/// Data-plane artifacts one switch rule installed, remembered so `delete`
/// can undo exactly what `create` did (the NM's teardown scripts during
/// self-healing rely on this).
#[derive(Debug, Clone, Default)]
struct InstalledSwitch {
    rules: Vec<(u32, RouteTableId)>,
    tables: Vec<RouteTableId>,
    main_routes: Vec<Ipv4Cidr>,
    tunnels: Vec<u32>,
}

/// The IPv4 protocol module.
pub struct IpModule {
    me: ModuleRef,
    /// The address domain this module belongs to (customer VRF or ISP core).
    pub domain: String,
    /// The module's primary address, used when a pipe-specific address
    /// cannot be determined.
    pub primary: Ipv4Addr,
    pipes: BTreeMap<PipeId, PipeRec>,
    /// Pipes indexed by their peer module — with hundreds of concurrent
    /// goals sharing one adjacency, matching an incoming envelope to its
    /// pipe must not scan every pipe (that made batched reconcile passes
    /// O(goals²) in envelope handling).
    by_peer: BTreeMap<ModuleRef, BTreeSet<PipeId>>,
    /// The subset of [`Self::by_peer`] still awaiting its peer value; an
    /// incoming exchange belongs to the lowest unlearned pipe of its peer.
    unlearned_by_peer: BTreeMap<ModuleRef, BTreeSet<PipeId>>,
    /// Adjacency pipes (upper end above an ETH module), so
    /// [`Self::path_address`] is O(1) instead of a per-call pipe scan.
    adjacency_pipes: BTreeSet<PipeId>,
    pending_switches: Vec<SwitchSpec>,
    applied_switches: Vec<((PipeId, PipeId), String)>,
    installed: BTreeMap<(PipeId, PipeId), InstalledSwitch>,
    filters_installed: Vec<String>,
    next_filter_id: u32,
}

impl IpModule {
    /// Create an IP module.
    pub fn new(me: ModuleRef, domain: impl Into<String>, primary: Ipv4Addr) -> Self {
        IpModule {
            me,
            domain: domain.into(),
            primary,
            pipes: BTreeMap::new(),
            by_peer: BTreeMap::new(),
            unlearned_by_peer: BTreeMap::new(),
            adjacency_pipes: BTreeSet::new(),
            pending_switches: Vec::new(),
            applied_switches: Vec::new(),
            installed: BTreeMap::new(),
            filters_installed: Vec::new(),
            next_filter_id: 1,
        }
    }

    /// The peer of a pipe from this module's perspective.
    fn peer_of(&self, rec: &PipeRec) -> Option<ModuleRef> {
        match rec.role {
            Role::Upper => rec.spec.peer_upper.clone(),
            Role::Lower => rec.spec.peer_lower.clone(),
        }
    }

    /// Is this pipe an "endpoint" pipe: this module is the lower end beneath
    /// a tunnelling module (GRE, or another IP module for IP-IP)?
    fn is_endpoint_pipe(rec: &PipeRec) -> bool {
        rec.role == Role::Lower && matches!(rec.spec.upper.kind, ModuleKind::Gre | ModuleKind::Ip)
    }

    /// Is this pipe an "adjacency" pipe: this module is the upper end above
    /// an ETH module, with a peer on the neighbouring device?
    fn is_adjacency_pipe(rec: &PipeRec) -> bool {
        rec.role == Role::Upper && rec.spec.lower.kind == ModuleKind::Eth
    }

    /// The port underlying an adjacency pipe (published by its ETH module).
    fn port_of(ctx: &ModuleCtx, pipe: PipeId) -> Option<u32> {
        ctx.pipe_attr(pipe, "port").and_then(|s| s.parse().ok())
    }

    /// How this module can reach the far side through one of its pipes:
    /// either a plain Ethernet adjacency (port + learnt next hop) or an
    /// MPLS LSP access point published by the MPLS module below.  Paths like
    /// `IP-IP over MPLS` hang tunnel endpoints and transit hops over LSPs
    /// instead of raw links, and healing routinely picks them.
    fn attachment_of(&self, ctx: &ModuleCtx, rec: &PipeRec) -> Option<Attachment> {
        if Self::is_adjacency_pipe(rec) {
            let port = Self::port_of(ctx, rec.spec.pipe)?;
            let nexthop = ctx
                .pipe_attr(rec.spec.pipe, "nexthop")?
                .parse::<Ipv4Addr>()
                .ok()?;
            return Some(Attachment::Adjacency { port, nexthop });
        }
        let attach = ctx.pipe_attr(rec.spec.pipe, "attach")?;
        let key = NhlfeKey(attach.strip_prefix("mpls:")?.parse().ok()?);
        let port = ctx.config.mpls.nhlfe_by_key(key)?.out_port;
        Some(Attachment::Mpls { key, port })
    }

    /// The address this module uses on a given adjacency pipe.
    fn address_on_pipe(&self, ctx: &ModuleCtx, pipe: PipeId) -> Ipv4Addr {
        Self::port_of(ctx, pipe)
            .and_then(|p| ctx.config.address_on_port(p))
            .map(|c| c.addr)
            .unwrap_or(self.primary)
    }

    /// The address this module reports as its end of the path: the address
    /// on its (unique) adjacency pipe when it has one, its primary otherwise.
    fn path_address(&self, ctx: &ModuleCtx) -> Ipv4Addr {
        let mut adj = self.adjacency_pipes.iter();
        match (adj.next(), adj.next()) {
            (Some(&only), None) => self.address_on_pipe(ctx, only),
            _ => self.primary,
        }
    }

    fn record_learned(
        &mut self,
        ctx: &mut ModuleCtx,
        pipe: PipeId,
        their: Ipv4Addr,
        ours: Ipv4Addr,
    ) {
        let peer = match self.pipes.get_mut(&pipe) {
            Some(rec) => {
                rec.learned = Some(their);
                if Self::is_endpoint_pipe(rec) {
                    ctx.set_pipe_attr(pipe, "remote_addr", their.to_string());
                    ctx.set_pipe_attr(pipe, "local_addr", ours.to_string());
                } else {
                    ctx.set_pipe_attr(pipe, "nexthop", their.to_string());
                }
                match rec.role {
                    Role::Upper => rec.spec.peer_upper.clone(),
                    Role::Lower => rec.spec.peer_lower.clone(),
                }
            }
            None => None,
        };
        if let Some(peer) = peer {
            if let Some(unlearned) = self.unlearned_by_peer.get_mut(&peer) {
                unlearned.remove(&pipe);
                if unlearned.is_empty() {
                    self.unlearned_by_peer.remove(&peer);
                }
            }
        }
    }

    /// Drop a pipe from the peer / adjacency indexes.
    fn unindex_pipe(&mut self, pipe: PipeId, rec: &PipeRec) {
        self.adjacency_pipes.remove(&pipe);
        if let Some(peer) = self.peer_of(rec) {
            for index in [&mut self.by_peer, &mut self.unlearned_by_peer] {
                if let Some(set) = index.get_mut(&peer) {
                    set.remove(&pipe);
                    if set.is_empty() {
                        index.remove(&peer);
                    }
                }
            }
        }
    }

    /// Try to apply a pending switch rule; returns true when fully applied.
    fn try_apply_switch(&mut self, ctx: &mut ModuleCtx, spec: &SwitchSpec) -> bool {
        // Classified rule: customer traffic into the core-side attachment.
        if let Some(class) = &spec.dst_class {
            let Some(attach) = ctx.pipe_attr(spec.out_pipe, "attach").cloned() else {
                return false;
            };
            let Some(prefix) = spec
                .resolved
                .get(class)
                .and_then(|s| s.parse::<Ipv4Cidr>().ok())
            else {
                return false;
            };
            let table = table_for(spec.out_pipe, ROLE_CLASS);
            let target = match parse_attach(&attach) {
                Some(t) => t,
                None => return false,
            };
            ctx.config.ip_forwarding = true;
            ctx.config
                .rib
                .name_table(table, format!("conman-{}", spec.out_pipe));
            ctx.config.rib.table_mut(table).add(Route {
                dest: Ipv4Cidr::DEFAULT,
                target,
            });
            let priority = priority_for(spec.out_pipe, ROLE_CLASS);
            ctx.config.rib.add_rule(PolicyRule {
                priority,
                selector: RuleSelector::ToPrefix(prefix),
                table,
            });
            let installed = self
                .installed
                .entry((spec.in_pipe, spec.out_pipe))
                .or_default();
            installed.rules.push((priority, table));
            installed.tables.push(table);
            self.applied_switches.push((
                (spec.in_pipe, spec.out_pipe),
                format!("[{} dst:{} => {}]", spec.in_pipe, class, spec.out_pipe),
            ));
            return true;
        }

        // Gateway rule: traffic coming back from the core towards the
        // customer-facing pipe.
        if let Some(gateway) = &spec.gateway {
            let Some(port) = Self::port_of(ctx, spec.out_pipe) else {
                return false;
            };
            let Some(gw) = spec
                .resolved
                .get(gateway)
                .and_then(|s| s.parse::<Ipv4Addr>().ok())
            else {
                return false;
            };
            ctx.config.ip_forwarding = true;
            let installed = self
                .installed
                .entry((spec.in_pipe, spec.out_pipe))
                .or_default();
            // Traffic decapsulated from a tunnel attachment gets a dedicated
            // policy rule (mirroring `ip rule add iif greA` in Figure 7(a)).
            if let Some(attach) = ctx.pipe_attr(spec.in_pipe, "attach").cloned() {
                if let Some(tunnel) = attach
                    .strip_prefix("tunnel:")
                    .and_then(|s| s.parse::<u32>().ok())
                {
                    let table = table_for(spec.in_pipe, ROLE_REVERSE);
                    ctx.config
                        .rib
                        .name_table(table, format!("conman-rev-{}", spec.in_pipe));
                    ctx.config.rib.table_mut(table).add(Route {
                        dest: Ipv4Cidr::DEFAULT,
                        target: RouteTarget::Port {
                            port,
                            via: Some(gw),
                        },
                    });
                    let priority = priority_for(spec.in_pipe, ROLE_REVERSE);
                    ctx.config.rib.add_rule(PolicyRule {
                        priority,
                        selector: RuleSelector::FromTunnel(tunnel),
                        table,
                    });
                    installed.rules.push((priority, table));
                    installed.tables.push(table);
                }
            }
            // In every case, make the local site prefix reachable through the
            // customer gateway so reverse traffic (including MPLS-decapped
            // packets) is delivered.
            if let Some(prefix) = spec
                .resolved
                .get("gateway-prefix")
                .and_then(|s| s.parse::<Ipv4Cidr>().ok())
            {
                ctx.config.rib.add_main(Route {
                    dest: prefix,
                    target: RouteTarget::Port {
                        port,
                        via: Some(gw),
                    },
                });
                installed.main_routes.push(prefix);
            }
            self.applied_switches.push((
                (spec.in_pipe, spec.out_pipe),
                format!("[{} => {}, {}]", spec.in_pipe, spec.out_pipe, gateway),
            ));
            return true;
        }

        // Unclassified rule between two of this module's pipes.
        let (Some(in_rec), Some(out_rec)) = (
            self.pipes.get(&spec.in_pipe).cloned(),
            self.pipes.get(&spec.out_pipe).cloned(),
        ) else {
            return false;
        };
        let endpoint = [&in_rec, &out_rec]
            .into_iter()
            .find(|r| Self::is_endpoint_pipe(r));
        match endpoint {
            // Tunnel-endpoint switch (Figure 7(b) command 8): route the
            // remote tunnel endpoint through the other pipe's attachment —
            // an Ethernet adjacency or, on `... over MPLS` paths, an LSP.
            Some(ep) => {
                let other = if ep.spec.pipe == in_rec.spec.pipe {
                    &out_rec
                } else {
                    &in_rec
                };
                let Some(remote) = ctx
                    .pipe_attr(ep.spec.pipe, "remote_addr")
                    .and_then(|s| s.parse::<Ipv4Addr>().ok())
                else {
                    return false;
                };
                let Some(attachment) = self.attachment_of(ctx, other) else {
                    return false;
                };
                ctx.config.ip_forwarding = true;
                ctx.config.rib.add_main(Route {
                    dest: Ipv4Cidr::new(remote, 32),
                    target: attachment.target(),
                });
                let installed = self
                    .installed
                    .entry((spec.in_pipe, spec.out_pipe))
                    .or_default();
                installed.main_routes.push(Ipv4Cidr::new(remote, 32));
                // For an IP-IP path this module is itself the tunnelling
                // protocol: create the IP-IP tunnel and expose the attachment
                // to the customer IP module above.
                if ep.spec.upper.kind == ModuleKind::Ip
                    && ctx.pipe_attr(ep.spec.pipe, "attach").is_none()
                {
                    let local = ctx
                        .pipe_attr(ep.spec.pipe, "local_addr")
                        .and_then(|s| s.parse::<Ipv4Addr>().ok())
                        .unwrap_or(self.primary);
                    let id = ctx.config.tunnels.keys().max().copied().unwrap_or(0) + 1;
                    let mut t =
                        TunnelConfig::ipip(id, format!("ipip-{}", ep.spec.pipe), local, remote);
                    t.ttl = 64;
                    ctx.config.tunnels.insert(id, t);
                    ctx.set_pipe_attr(ep.spec.pipe, "attach", format!("tunnel:{id}"));
                    self.installed
                        .entry((spec.in_pipe, spec.out_pipe))
                        .or_default()
                        .tunnels
                        .push(id);
                }
                self.applied_switches.push((
                    (spec.in_pipe, spec.out_pipe),
                    format!("[{} <=> {}]", spec.in_pipe, spec.out_pipe),
                ));
                true
            }
            // Transit switch between two attachments (the core router's IP
            // module): interface-scoped default routes in both directions.
            // Either side may be an Ethernet adjacency or an LSP access
            // point (a transit hop where the packet leaves/rejoins an MPLS
            // segment).
            None => {
                let (Some(att_in), Some(att_out)) = (
                    self.attachment_of(ctx, &in_rec),
                    self.attachment_of(ctx, &out_rec),
                ) else {
                    return false;
                };
                ctx.config.ip_forwarding = true;
                let installed = self
                    .installed
                    .entry((spec.in_pipe, spec.out_pipe))
                    .or_default();
                for (i, (from, to)) in [(att_in, att_out), (att_out, att_in)]
                    .into_iter()
                    .enumerate()
                {
                    let role = if i == 0 {
                        ROLE_TRANSIT_FWD
                    } else {
                        ROLE_TRANSIT_REV
                    };
                    let table = table_for(spec.in_pipe, role);
                    ctx.config
                        .rib
                        .name_table(table, format!("conman-transit-{}", table.0));
                    ctx.config.rib.table_mut(table).add(Route {
                        dest: Ipv4Cidr::DEFAULT,
                        target: to.target(),
                    });
                    let priority = priority_for(spec.in_pipe, role);
                    ctx.config.rib.add_rule(PolicyRule {
                        priority,
                        selector: RuleSelector::FromPort(from.port()),
                        table,
                    });
                    installed.rules.push((priority, table));
                    installed.tables.push(table);
                }
                self.applied_switches.push((
                    (spec.in_pipe, spec.out_pipe),
                    format!("[{} <=> {}]", spec.in_pipe, spec.out_pipe),
                ));
                true
            }
        }
    }
}

/// Role of a derived route table / policy rule, used to keep identifiers
/// unique per (pipe, role) pair.
const ROLE_CLASS: u32 = 0; // classified forward rule, keyed by the out pipe
const ROLE_REVERSE: u32 = 1; // reverse gateway rule, keyed by the in pipe
const ROLE_TRANSIT_FWD: u32 = 2; // transit direction 1, keyed by the in pipe
const ROLE_TRANSIT_REV: u32 = 3; // transit direction 2, keyed by the in pipe

/// The route table a switch rule installs into.  Injective in (pipe, role):
/// concurrent goals execute in disjoint pipe-id blocks, so their tables can
/// never collide with each other — nor with the reserved main table (254),
/// which the old `240 + 2 * pipe` scheme could reach on long chains.
fn table_for(pipe: PipeId, role: u32) -> RouteTableId {
    RouteTableId(1000 + pipe.0 * 4 + role)
}

/// The policy-rule priority paired with [`table_for`], unique the same way.
fn priority_for(pipe: PipeId, role: u32) -> u32 {
    100 + pipe.0 * 4 + role
}

/// The inclusive range of derived route-table ids a goal's pipe block can
/// produce (`slots` pipe ids from `pipe_base`, every role).  This is the
/// *authoritative* mapping — per-goal fault injection
/// (`netsim::fault::Misconfiguration::FlushRouteTables`) and the loop
/// bench target exactly one goal's tables through it instead of
/// duplicating the numbering scheme, which has already changed once.
pub fn derived_table_range(pipe_base: u32, slots: u32) -> (RouteTableId, RouteTableId) {
    (
        table_for(PipeId(pipe_base), 0),
        table_for(PipeId(pipe_base + slots.saturating_sub(1)), 3),
    )
}

fn parse_attach(attach: &str) -> Option<RouteTarget> {
    if let Some(id) = attach.strip_prefix("tunnel:") {
        return Some(RouteTarget::Tunnel {
            tunnel: id.parse().ok()?,
        });
    }
    if let Some(key) = attach.strip_prefix("mpls:") {
        return Some(RouteTarget::Mpls {
            nhlfe: netsim::mpls::NhlfeKey(key.parse().ok()?),
        });
    }
    None
}

impl ProtocolModule for IpModule {
    fn reference(&self) -> ModuleRef {
        self.me.clone()
    }

    fn descriptor(&self) -> ModuleAbstraction {
        let mut a = ModuleAbstraction::empty(self.me.clone());
        a.up_connectable = vec![ModuleKind::Ip, ModuleKind::Gre];
        a.down_connectable = vec![
            ModuleKind::Ip,
            ModuleKind::Gre,
            ModuleKind::Mpls,
            ModuleKind::Eth,
        ];
        a.peerable = vec![ModuleKind::Ip];
        a.switch.kinds = vec![
            SwitchKind::DownUp,
            SwitchKind::UpDown,
            SwitchKind::DownDown,
            SwitchKind::UpUp,
        ];
        a.filter = FilterCapability {
            classifiers: vec![
                FilterClassifier::SourceModule,
                FilterClassifier::DestinationModule,
                FilterClassifier::ModuleType,
            ],
        };
        a.perf_reporting = vec!["packets forwarded, delivered and dropped".to_string()];
        a.address_domain = Some(self.domain.clone());
        a.up_dependencies = vec![];
        a.down_dependencies = vec![Dependency::new(
            "arp",
            "relies on ARP for IP-to-MAC mapping on Ethernet down-pipes",
        )];
        a
    }

    fn actual(&self, ctx: &ModuleCtx) -> ModuleActual {
        let mut perf = BTreeMap::new();
        perf.insert(
            "routes".to_string(),
            ctx.config
                .rib
                .tables()
                .map(|(_, t)| t.len() as u64)
                .sum::<u64>(),
        );
        ModuleActual {
            pipes: self.pipes.keys().copied().collect(),
            switch_rules: self
                .applied_switches
                .iter()
                .map(|(_, s)| s.clone())
                .collect(),
            filters: self.filters_installed.clone(),
            perf_report: perf,
        }
    }

    fn counters(&self, ctx: &ModuleCtx) -> CounterSnapshot {
        // Packets forwarded, delivered and dropped — the engine does not
        // attribute IP processing to individual pipes, so the module reports
        // totals plus the drop reasons in its fault domain.
        let mut snap = CounterSnapshot::empty(self.me.clone());
        snap.totals.rx_packets = ctx.stats.forwarded + ctx.stats.local_delivered;
        snap.totals.tx_packets = ctx.stats.forwarded + ctx.stats.originated;
        for reason in [
            DropReason::NoRoute,
            DropReason::TtlExpired,
            DropReason::Filtered,
            DropReason::ForwardingDisabled,
        ] {
            if let Some(n) = ctx.stats.drops.get(&reason) {
                snap.totals.drops += *n;
                snap.drop_breakdown.insert(format!("{reason:?}"), *n);
            }
        }
        snap
    }

    fn delete(
        &mut self,
        ctx: &mut ModuleCtx,
        component: &ComponentRef,
    ) -> Result<ModuleReaction, ModuleError> {
        match component {
            ComponentRef::SwitchRule(module, in_pipe, out_pipe) if *module == self.me => {
                if let Some(installed) = self.installed.remove(&(*in_pipe, *out_pipe)) {
                    for (priority, table) in &installed.rules {
                        ctx.config.rib.remove_rule(*priority, *table);
                    }
                    for table in &installed.tables {
                        ctx.config.rib.drop_table(*table);
                    }
                    for dest in &installed.main_routes {
                        // Main-table routes can be *shared*: concurrent
                        // goals tunnelling between the same endpoints each
                        // register the same /32 host route.  Only drop it
                        // once no surviving switch still needs it.
                        let still_needed = self
                            .installed
                            .values()
                            .any(|other| other.main_routes.contains(dest));
                        if !still_needed {
                            ctx.config.rib.table_mut(RouteTableId::MAIN).remove(*dest);
                        }
                    }
                    for tunnel in &installed.tunnels {
                        ctx.config.tunnels.remove(tunnel);
                    }
                }
                self.applied_switches
                    .retain(|(key, _)| *key != (*in_pipe, *out_pipe));
                self.pending_switches
                    .retain(|s| !(s.in_pipe == *in_pipe && s.out_pipe == *out_pipe));
            }
            ComponentRef::Pipe(pipe) => {
                if let Some(rec) = self.pipes.remove(pipe) {
                    self.unindex_pipe(*pipe, &rec);
                }
                self.pending_switches
                    .retain(|s| s.in_pipe != *pipe && s.out_pipe != *pipe);
            }
            _ => {}
        }
        Ok(ModuleReaction::none())
    }

    fn create_pipe(
        &mut self,
        _ctx: &mut ModuleCtx,
        spec: &PipeSpec,
    ) -> Result<ModuleReaction, ModuleError> {
        let role = if spec.upper == self.me {
            Role::Upper
        } else {
            Role::Lower
        };
        let rec = PipeRec {
            spec: spec.clone(),
            role,
            learned: None,
            query_sent: false,
        };
        if let Some(peer) = self.peer_of(&rec) {
            self.by_peer
                .entry(peer.clone())
                .or_default()
                .insert(spec.pipe);
            self.unlearned_by_peer
                .entry(peer)
                .or_default()
                .insert(spec.pipe);
        }
        if Self::is_adjacency_pipe(&rec) {
            self.adjacency_pipes.insert(spec.pipe);
        }
        self.pipes.insert(spec.pipe, rec);
        Ok(ModuleReaction::none())
    }

    fn create_switch(
        &mut self,
        ctx: &mut ModuleCtx,
        spec: &SwitchSpec,
    ) -> Result<ModuleReaction, ModuleError> {
        if !self.try_apply_switch(ctx, spec) {
            self.pending_switches.push(spec.clone());
        }
        Ok(ModuleReaction::none())
    }

    fn create_filter(
        &mut self,
        ctx: &mut ModuleCtx,
        spec: &FilterSpec,
    ) -> Result<ModuleReaction, ModuleError> {
        // The NM speaks in terms of modules; the IP module resolves them to
        // protocol fields.  The resolved map carries any field values the NM
        // already tracked; otherwise the module would query the target
        // modules with listFieldsAndValues.
        let src = spec
            .resolved
            .get("from-address")
            .and_then(|s| s.parse::<Ipv4Cidr>().ok());
        let dst = spec
            .resolved
            .get("to-address")
            .and_then(|s| s.parse::<Ipv4Cidr>().ok());
        let dst_port = spec
            .resolved
            .get("to-port")
            .and_then(|s| s.parse::<u16>().ok());
        if src.is_none() && dst.is_none() {
            return Ok(ModuleReaction::envelope(ModuleEnvelope {
                from: self.me.clone(),
                to: spec.to.clone(),
                kind: EnvelopeKind::FieldQuery,
                body: serde_json::json!({"query": "fields-for-filter"}),
            }));
        }
        let id = self.next_filter_id;
        self.next_filter_id += 1;
        ctx.config.filters.push(FilterRule {
            id,
            action: FilterAction::Drop,
            src,
            dst,
            proto: None,
            dst_port,
        });
        self.filters_installed
            .push(format!("drop {} -> {}", spec.from, spec.to));
        Ok(ModuleReaction::none())
    }

    fn handle_envelope(
        &mut self,
        ctx: &mut ModuleCtx,
        env: &ModuleEnvelope,
    ) -> Result<ModuleReaction, ModuleError> {
        let Some(their) = env
            .body
            .get("address")
            .and_then(|v| v.as_str())
            .and_then(|s| s.parse::<Ipv4Addr>().ok())
        else {
            return Ok(ModuleReaction::none());
        };
        // Find the pipe whose peer sent this message.  Concurrent goals can
        // each run a pipe to the *same* peer module; the exchange in flight
        // belongs to the lowest pipe still awaiting its peer value (batched
        // passes run many exchanges per peer pair concurrently, but both
        // sides issue and answer them in ascending pipe — i.e. goal-block —
        // order, so lowest-unlearned matching pairs them correctly).  The
        // peer index makes this O(log pipes) instead of a full pipe scan.
        let pipe = self
            .unlearned_by_peer
            .get(&env.from)
            .and_then(|pipes| pipes.first().copied())
            .or_else(|| {
                self.by_peer
                    .get(&env.from)
                    .and_then(|pipes| pipes.first().copied())
            });
        let Some(pipe) = pipe else {
            return Ok(ModuleReaction::none());
        };
        let ours = {
            let rec = &self.pipes[&pipe];
            if Self::is_adjacency_pipe(rec) {
                self.address_on_pipe(ctx, pipe)
            } else {
                self.path_address(ctx)
            }
        };
        self.record_learned(ctx, pipe, their, ours);
        if env.kind == EnvelopeKind::FieldQuery {
            // Answer with our address for this pipe.
            return Ok(ModuleReaction::envelope(ModuleEnvelope {
                from: self.me.clone(),
                to: env.from.clone(),
                kind: EnvelopeKind::FieldResponse,
                body: serde_json::json!({"address": ours.to_string()}),
            }));
        }
        Ok(ModuleReaction::none())
    }

    fn poll(&mut self, ctx: &mut ModuleCtx) -> ModuleReaction {
        let mut reaction = ModuleReaction::none();

        // 1. Initiate pending peer exchanges once the underlying port (and
        //    therefore our address) is known.
        let pipe_ids: Vec<PipeId> = self.pipes.keys().copied().collect();
        for id in pipe_ids {
            let rec = self.pipes[&id].clone();
            if rec.query_sent || !rec.spec.initiate {
                continue;
            }
            let Some(peer) = self.peer_of(&rec) else {
                continue;
            };
            if peer.kind != ModuleKind::Ip {
                continue;
            }
            let needs_exchange = Self::is_endpoint_pipe(&rec) || Self::is_adjacency_pipe(&rec);
            if !needs_exchange {
                continue;
            }
            let ours = if Self::is_adjacency_pipe(&rec) {
                if Self::port_of(ctx, id).is_none() {
                    continue; // ETH module has not published the port yet
                }
                self.address_on_pipe(ctx, id)
            } else {
                self.path_address(ctx)
            };
            self.pipes.get_mut(&id).expect("pipe exists").query_sent = true;
            reaction.envelopes.push(ModuleEnvelope {
                from: self.me.clone(),
                to: peer,
                kind: EnvelopeKind::FieldQuery,
                body: serde_json::json!({"query": "address", "address": ours.to_string()}),
            });
        }

        // 2. Retry pending switch rules.
        let pending = std::mem::take(&mut self.pending_switches);
        for spec in pending {
            if !self.try_apply_switch(ctx, &spec) {
                self.pending_switches.push(spec);
            }
        }
        reaction
    }
}
