//! The IPv4 protocol module.
//!
//! A device may contain several IP modules: the paper's Figure 4(b) shows a
//! customer-facing IP module (a "virtual router" in the customer's address
//! domain) and an ISP-facing IP module on the edge routers.  The module
//! resolves everything address-related itself — it exchanges addresses with
//! its peer IP modules through `listFieldsAndValues` relayed by the NM, and
//! turns the NM's abstract pipe/switch primitives into routes, policy rules
//! and (for IP-IP paths) tunnel state in the simulated data plane.

use conman_core::abstraction::{
    Dependency, FilterCapability, FilterClassifier, ModuleAbstraction, SwitchKind,
};
use conman_core::ids::{ModuleKind, ModuleRef, PipeId};
use conman_core::module::{ModuleCtx, ModuleError, ModuleReaction, ProtocolModule};
use conman_core::primitives::{
    EnvelopeKind, FilterSpec, ModuleActual, ModuleEnvelope, PipeSpec, SwitchSpec,
};
use netsim::config::{FilterAction, FilterRule, TunnelConfig};
use netsim::ipv4::Ipv4Cidr;
use netsim::route::{PolicyRule, Route, RouteTableId, RouteTarget, RuleSelector};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Which end of a pipe this module is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Upper,
    Lower,
}

#[derive(Debug, Clone)]
struct PipeRec {
    spec: PipeSpec,
    role: Role,
    /// Peer address learnt for this pipe (next hop or remote tunnel endpoint).
    learned: Option<Ipv4Addr>,
    /// Has the peer exchange for this pipe been initiated?
    query_sent: bool,
}

/// The IPv4 protocol module.
pub struct IpModule {
    me: ModuleRef,
    /// The address domain this module belongs to (customer VRF or ISP core).
    pub domain: String,
    /// The module's primary address, used when a pipe-specific address
    /// cannot be determined.
    pub primary: Ipv4Addr,
    pipes: BTreeMap<PipeId, PipeRec>,
    pending_switches: Vec<SwitchSpec>,
    applied_switches: Vec<String>,
    filters_installed: Vec<String>,
    next_filter_id: u32,
}

impl IpModule {
    /// Create an IP module.
    pub fn new(me: ModuleRef, domain: impl Into<String>, primary: Ipv4Addr) -> Self {
        IpModule {
            me,
            domain: domain.into(),
            primary,
            pipes: BTreeMap::new(),
            pending_switches: Vec::new(),
            applied_switches: Vec::new(),
            filters_installed: Vec::new(),
            next_filter_id: 1,
        }
    }

    /// The peer of a pipe from this module's perspective.
    fn peer_of(&self, rec: &PipeRec) -> Option<ModuleRef> {
        match rec.role {
            Role::Upper => rec.spec.peer_upper.clone(),
            Role::Lower => rec.spec.peer_lower.clone(),
        }
    }

    /// Is this pipe an "endpoint" pipe: this module is the lower end beneath
    /// a tunnelling module (GRE, or another IP module for IP-IP)?
    fn is_endpoint_pipe(rec: &PipeRec) -> bool {
        rec.role == Role::Lower
            && matches!(rec.spec.upper.kind, ModuleKind::Gre | ModuleKind::Ip)
    }

    /// Is this pipe an "adjacency" pipe: this module is the upper end above
    /// an ETH module, with a peer on the neighbouring device?
    fn is_adjacency_pipe(rec: &PipeRec) -> bool {
        rec.role == Role::Upper && rec.spec.lower.kind == ModuleKind::Eth
    }

    /// The port underlying an adjacency pipe (published by its ETH module).
    fn port_of(ctx: &ModuleCtx, pipe: PipeId) -> Option<u32> {
        ctx.pipe_attr(pipe, "port").and_then(|s| s.parse().ok())
    }

    /// The address this module uses on a given adjacency pipe.
    fn address_on_pipe(&self, ctx: &ModuleCtx, pipe: PipeId) -> Ipv4Addr {
        Self::port_of(ctx, pipe)
            .and_then(|p| ctx.config.address_on_port(p))
            .map(|c| c.addr)
            .unwrap_or(self.primary)
    }

    /// The address this module reports as its end of the path: the address
    /// on its (unique) adjacency pipe when it has one, its primary otherwise.
    fn path_address(&self, ctx: &ModuleCtx) -> Ipv4Addr {
        let adj: Vec<&PipeRec> = self
            .pipes
            .values()
            .filter(|r| Self::is_adjacency_pipe(r))
            .collect();
        match adj.as_slice() {
            [only] => self.address_on_pipe(ctx, only.spec.pipe),
            _ => self.primary,
        }
    }

    fn record_learned(&mut self, ctx: &mut ModuleCtx, pipe: PipeId, their: Ipv4Addr, ours: Ipv4Addr) {
        if let Some(rec) = self.pipes.get_mut(&pipe) {
            rec.learned = Some(their);
            if Self::is_endpoint_pipe(rec) {
                ctx.set_pipe_attr(pipe, "remote_addr", their.to_string());
                ctx.set_pipe_attr(pipe, "local_addr", ours.to_string());
            } else {
                ctx.set_pipe_attr(pipe, "nexthop", their.to_string());
            }
        }
    }

    /// Try to apply a pending switch rule; returns true when fully applied.
    fn try_apply_switch(&mut self, ctx: &mut ModuleCtx, spec: &SwitchSpec) -> bool {
        // Classified rule: customer traffic into the core-side attachment.
        if let Some(class) = &spec.dst_class {
            let Some(attach) = ctx.pipe_attr(spec.out_pipe, "attach").cloned() else {
                return false;
            };
            let Some(prefix) = spec.resolved.get(class).and_then(|s| s.parse::<Ipv4Cidr>().ok())
            else {
                return false;
            };
            let table = RouteTableId(200 + spec.out_pipe.0);
            let target = match parse_attach(&attach) {
                Some(t) => t,
                None => return false,
            };
            ctx.config.ip_forwarding = true;
            ctx.config.rib.name_table(table, format!("conman-{}", spec.out_pipe));
            ctx.config.rib.table_mut(table).add(Route {
                dest: Ipv4Cidr::DEFAULT,
                target,
            });
            ctx.config.rib.add_rule(PolicyRule {
                priority: 100 + spec.out_pipe.0,
                selector: RuleSelector::ToPrefix(prefix),
                table,
            });
            self.applied_switches
                .push(format!("[{} dst:{} => {}]", spec.in_pipe, class, spec.out_pipe));
            return true;
        }

        // Gateway rule: traffic coming back from the core towards the
        // customer-facing pipe.
        if let Some(gateway) = &spec.gateway {
            let Some(port) = Self::port_of(ctx, spec.out_pipe) else {
                return false;
            };
            let Some(gw) = spec.resolved.get(gateway).and_then(|s| s.parse::<Ipv4Addr>().ok())
            else {
                return false;
            };
            ctx.config.ip_forwarding = true;
            // Traffic decapsulated from a tunnel attachment gets a dedicated
            // policy rule (mirroring `ip rule add iif greA` in Figure 7(a)).
            if let Some(attach) = ctx.pipe_attr(spec.in_pipe, "attach").cloned() {
                if let Some(tunnel) = attach.strip_prefix("tunnel:").and_then(|s| s.parse::<u32>().ok()) {
                    let table = RouteTableId(220 + spec.in_pipe.0);
                    ctx.config.rib.name_table(table, format!("conman-rev-{}", spec.in_pipe));
                    ctx.config.rib.table_mut(table).add(Route {
                        dest: Ipv4Cidr::DEFAULT,
                        target: RouteTarget::Port {
                            port,
                            via: Some(gw),
                        },
                    });
                    ctx.config.rib.add_rule(PolicyRule {
                        priority: 120 + spec.in_pipe.0,
                        selector: RuleSelector::FromTunnel(tunnel),
                        table,
                    });
                }
            }
            // In every case, make the local site prefix reachable through the
            // customer gateway so reverse traffic (including MPLS-decapped
            // packets) is delivered.
            if let Some(prefix) = spec
                .resolved
                .get("gateway-prefix")
                .and_then(|s| s.parse::<Ipv4Cidr>().ok())
            {
                ctx.config.rib.add_main(Route {
                    dest: prefix,
                    target: RouteTarget::Port {
                        port,
                        via: Some(gw),
                    },
                });
            }
            self.applied_switches
                .push(format!("[{} => {}, {}]", spec.in_pipe, spec.out_pipe, gateway));
            return true;
        }

        // Unclassified rule between two of this module's pipes.
        let (Some(in_rec), Some(out_rec)) = (
            self.pipes.get(&spec.in_pipe).cloned(),
            self.pipes.get(&spec.out_pipe).cloned(),
        ) else {
            return false;
        };
        let endpoint = [&in_rec, &out_rec].into_iter().find(|r| Self::is_endpoint_pipe(r));
        let adjacency = [&in_rec, &out_rec].into_iter().find(|r| Self::is_adjacency_pipe(r));
        match (endpoint, adjacency) {
            // Tunnel-endpoint switch (Figure 7(b) command 8): route the
            // remote tunnel endpoint via the adjacent peer.
            (Some(ep), Some(adj)) => {
                let Some(remote) = ctx
                    .pipe_attr(ep.spec.pipe, "remote_addr")
                    .and_then(|s| s.parse::<Ipv4Addr>().ok())
                else {
                    return false;
                };
                let Some(nexthop) = ctx
                    .pipe_attr(adj.spec.pipe, "nexthop")
                    .and_then(|s| s.parse::<Ipv4Addr>().ok())
                else {
                    return false;
                };
                let Some(port) = Self::port_of(ctx, adj.spec.pipe) else {
                    return false;
                };
                ctx.config.ip_forwarding = true;
                ctx.config.rib.add_main(Route {
                    dest: Ipv4Cidr::new(remote, 32),
                    target: RouteTarget::Port {
                        port,
                        via: Some(nexthop),
                    },
                });
                // For an IP-IP path this module is itself the tunnelling
                // protocol: create the IP-IP tunnel and expose the attachment
                // to the customer IP module above.
                if ep.spec.upper.kind == ModuleKind::Ip
                    && ctx.pipe_attr(ep.spec.pipe, "attach").is_none()
                {
                    let local = ctx
                        .pipe_attr(ep.spec.pipe, "local_addr")
                        .and_then(|s| s.parse::<Ipv4Addr>().ok())
                        .unwrap_or(self.primary);
                    let id = ctx.config.tunnels.keys().max().copied().unwrap_or(0) + 1;
                    let mut t = TunnelConfig::ipip(id, format!("ipip-{}", ep.spec.pipe), local, remote);
                    t.ttl = 64;
                    ctx.config.tunnels.insert(id, t);
                    ctx.set_pipe_attr(ep.spec.pipe, "attach", format!("tunnel:{id}"));
                }
                self.applied_switches
                    .push(format!("[{} <=> {}]", spec.in_pipe, spec.out_pipe));
                true
            }
            // Transit switch between two adjacency pipes (the core router's
            // IP module in the IP-IP / GRE-IP paths): interface-scoped
            // default routes in both directions.
            (None, Some(_)) => {
                let both = [&in_rec, &out_rec];
                if !both.iter().all(|r| Self::is_adjacency_pipe(r)) {
                    return false;
                }
                let mut resolved = Vec::new();
                for (a, b) in [(&in_rec, &out_rec), (&out_rec, &in_rec)] {
                    let (Some(port_in), Some(port_out), Some(nexthop_out)) = (
                        Self::port_of(ctx, a.spec.pipe),
                        Self::port_of(ctx, b.spec.pipe),
                        ctx.pipe_attr(b.spec.pipe, "nexthop")
                            .and_then(|s| s.parse::<Ipv4Addr>().ok()),
                    ) else {
                        return false;
                    };
                    resolved.push((port_in, port_out, nexthop_out));
                }
                ctx.config.ip_forwarding = true;
                for (i, (port_in, port_out, nexthop_out)) in resolved.into_iter().enumerate() {
                    let table = RouteTableId(240 + spec.in_pipe.0 * 2 + i as u32);
                    ctx.config.rib.name_table(table, format!("conman-transit-{}", table.0));
                    ctx.config.rib.table_mut(table).add(Route {
                        dest: Ipv4Cidr::DEFAULT,
                        target: RouteTarget::Port {
                            port: port_out,
                            via: Some(nexthop_out),
                        },
                    });
                    ctx.config.rib.add_rule(PolicyRule {
                        priority: 140 + spec.in_pipe.0 * 2 + i as u32,
                        selector: RuleSelector::FromPort(port_in),
                        table,
                    });
                }
                self.applied_switches
                    .push(format!("[{} <=> {}]", spec.in_pipe, spec.out_pipe));
                true
            }
            _ => false,
        }
    }
}

fn parse_attach(attach: &str) -> Option<RouteTarget> {
    if let Some(id) = attach.strip_prefix("tunnel:") {
        return Some(RouteTarget::Tunnel {
            tunnel: id.parse().ok()?,
        });
    }
    if let Some(key) = attach.strip_prefix("mpls:") {
        return Some(RouteTarget::Mpls {
            nhlfe: netsim::mpls::NhlfeKey(key.parse().ok()?),
        });
    }
    None
}

impl ProtocolModule for IpModule {
    fn reference(&self) -> ModuleRef {
        self.me.clone()
    }

    fn descriptor(&self) -> ModuleAbstraction {
        let mut a = ModuleAbstraction::empty(self.me.clone());
        a.up_connectable = vec![ModuleKind::Ip, ModuleKind::Gre];
        a.down_connectable = vec![
            ModuleKind::Ip,
            ModuleKind::Gre,
            ModuleKind::Mpls,
            ModuleKind::Eth,
        ];
        a.peerable = vec![ModuleKind::Ip];
        a.switch.kinds = vec![
            SwitchKind::DownUp,
            SwitchKind::UpDown,
            SwitchKind::DownDown,
            SwitchKind::UpUp,
        ];
        a.filter = FilterCapability {
            classifiers: vec![
                FilterClassifier::SourceModule,
                FilterClassifier::DestinationModule,
                FilterClassifier::ModuleType,
            ],
        };
        a.perf_reporting = vec!["packets forwarded, delivered and dropped".to_string()];
        a.address_domain = Some(self.domain.clone());
        a.up_dependencies = vec![];
        a.down_dependencies = vec![Dependency::new(
            "arp",
            "relies on ARP for IP-to-MAC mapping on Ethernet down-pipes",
        )];
        a
    }

    fn actual(&self, ctx: &ModuleCtx) -> ModuleActual {
        let mut perf = BTreeMap::new();
        perf.insert("routes".to_string(), ctx
            .config
            .rib
            .tables()
            .map(|(_, t)| t.len() as u64)
            .sum::<u64>());
        ModuleActual {
            pipes: self.pipes.keys().copied().collect(),
            switch_rules: self.applied_switches.clone(),
            filters: self.filters_installed.clone(),
            perf_report: perf,
        }
    }

    fn create_pipe(
        &mut self,
        _ctx: &mut ModuleCtx,
        spec: &PipeSpec,
    ) -> Result<ModuleReaction, ModuleError> {
        let role = if spec.upper == self.me {
            Role::Upper
        } else {
            Role::Lower
        };
        self.pipes.insert(
            spec.pipe,
            PipeRec {
                spec: spec.clone(),
                role,
                learned: None,
                query_sent: false,
            },
        );
        Ok(ModuleReaction::none())
    }

    fn create_switch(
        &mut self,
        ctx: &mut ModuleCtx,
        spec: &SwitchSpec,
    ) -> Result<ModuleReaction, ModuleError> {
        if !self.try_apply_switch(ctx, spec) {
            self.pending_switches.push(spec.clone());
        }
        Ok(ModuleReaction::none())
    }

    fn create_filter(
        &mut self,
        ctx: &mut ModuleCtx,
        spec: &FilterSpec,
    ) -> Result<ModuleReaction, ModuleError> {
        // The NM speaks in terms of modules; the IP module resolves them to
        // protocol fields.  The resolved map carries any field values the NM
        // already tracked; otherwise the module would query the target
        // modules with listFieldsAndValues.
        let src = spec
            .resolved
            .get("from-address")
            .and_then(|s| s.parse::<Ipv4Cidr>().ok());
        let dst = spec
            .resolved
            .get("to-address")
            .and_then(|s| s.parse::<Ipv4Cidr>().ok());
        let dst_port = spec.resolved.get("to-port").and_then(|s| s.parse::<u16>().ok());
        if src.is_none() && dst.is_none() {
            return Ok(ModuleReaction::envelope(ModuleEnvelope {
                from: self.me.clone(),
                to: spec.to.clone(),
                kind: EnvelopeKind::FieldQuery,
                body: serde_json::json!({"query": "fields-for-filter"}),
            }));
        }
        let id = self.next_filter_id;
        self.next_filter_id += 1;
        ctx.config.filters.push(FilterRule {
            id,
            action: FilterAction::Drop,
            src,
            dst,
            proto: None,
            dst_port,
        });
        self.filters_installed
            .push(format!("drop {} -> {}", spec.from, spec.to));
        Ok(ModuleReaction::none())
    }

    fn handle_envelope(
        &mut self,
        ctx: &mut ModuleCtx,
        env: &ModuleEnvelope,
    ) -> Result<ModuleReaction, ModuleError> {
        let Some(their) = env
            .body
            .get("address")
            .and_then(|v| v.as_str())
            .and_then(|s| s.parse::<Ipv4Addr>().ok())
        else {
            return Ok(ModuleReaction::none());
        };
        // Find the pipe whose peer sent this message.
        let pipe = self
            .pipes
            .values()
            .find(|r| self.peer_of(r).as_ref() == Some(&env.from))
            .map(|r| r.spec.pipe);
        let Some(pipe) = pipe else {
            return Ok(ModuleReaction::none());
        };
        let ours = {
            let rec = &self.pipes[&pipe];
            if Self::is_adjacency_pipe(rec) {
                self.address_on_pipe(ctx, pipe)
            } else {
                self.path_address(ctx)
            }
        };
        self.record_learned(ctx, pipe, their, ours);
        if env.kind == EnvelopeKind::FieldQuery {
            // Answer with our address for this pipe.
            return Ok(ModuleReaction::envelope(ModuleEnvelope {
                from: self.me.clone(),
                to: env.from.clone(),
                kind: EnvelopeKind::FieldResponse,
                body: serde_json::json!({"address": ours.to_string()}),
            }));
        }
        Ok(ModuleReaction::none())
    }

    fn poll(&mut self, ctx: &mut ModuleCtx) -> ModuleReaction {
        let mut reaction = ModuleReaction::none();

        // 1. Initiate pending peer exchanges once the underlying port (and
        //    therefore our address) is known.
        let pipe_ids: Vec<PipeId> = self.pipes.keys().copied().collect();
        for id in pipe_ids {
            let rec = self.pipes[&id].clone();
            if rec.query_sent || !rec.spec.initiate {
                continue;
            }
            let Some(peer) = self.peer_of(&rec) else {
                continue;
            };
            if peer.kind != ModuleKind::Ip {
                continue;
            }
            let needs_exchange = Self::is_endpoint_pipe(&rec) || Self::is_adjacency_pipe(&rec);
            if !needs_exchange {
                continue;
            }
            let ours = if Self::is_adjacency_pipe(&rec) {
                if Self::port_of(ctx, id).is_none() {
                    continue; // ETH module has not published the port yet
                }
                self.address_on_pipe(ctx, id)
            } else {
                self.path_address(ctx)
            };
            self.pipes.get_mut(&id).expect("pipe exists").query_sent = true;
            reaction.envelopes.push(ModuleEnvelope {
                from: self.me.clone(),
                to: peer,
                kind: EnvelopeKind::FieldQuery,
                body: serde_json::json!({"query": "address", "address": ours.to_string()}),
            });
        }

        // 2. Retry pending switch rules.
        let pending = std::mem::take(&mut self.pending_switches);
        for spec in pending {
            if !self.try_apply_switch(ctx, &spec) {
                self.pending_switches.push(spec);
            }
        }
        reaction
    }
}
