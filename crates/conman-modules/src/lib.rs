//! # conman-modules — CONMan protocol modules over the simulated data plane
//!
//! The concrete protocol modules the paper implemented as user-level wrappers
//! around the Linux data plane, re-implemented here as wrappers around the
//! `netsim` forwarding engine:
//!
//! * [`eth::EthModule`] — Ethernet, bound to physical ports,
//! * [`ip::IpModule`] — IPv4 "virtual routers" (customer VRFs and the ISP
//!   core), including IP-IP tunnelling,
//! * [`gre::GreModule`] — GRE tunnels with key / sequencing / checksum
//!   negotiation (Table III),
//! * [`mpls::MplsModule`] — MPLS LSPs with label distribution,
//! * [`vlan::VlanModule`] — provider VLAN (Q-in-Q) tunnelling,
//!
//! plus [`builder`] functions that assemble the per-device management agents
//! of Figures 2, 4 and 9, and [`testbed`] helpers that wire complete managed
//! networks together for the examples, tests and experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod eth;
pub mod gre;
pub mod ip;
pub mod mpls;
pub mod testbed;
pub mod vlan;

pub use builder::{
    build_l2_switch_agent, build_plain_router_agent, build_router_agent, build_tunnel_host_agent,
    build_vlan_switch_agent, RouterPlan,
};
pub use eth::EthModule;
pub use gre::GreModule;
pub use ip::{derived_table_range, IpModule};
pub use mpls::MplsModule;
pub use testbed::{
    managed_chain, managed_chain_with, managed_dual_chain, managed_fanout_chain,
    managed_fanout_chain_with, managed_figure2, managed_mesh_fanout, managed_mesh_fanout_with,
    managed_ring_fanout, managed_vlan_chain, ManagedChain, ManagedFigure2, ManagedMesh,
    ManagedVlanChain,
};
pub use vlan::VlanModule;
