//! The 802.1Q VLAN protocol module on provider switches (Figure 9).
//!
//! The VLAN identifier is agreed between adjacent VLAN modules through
//! `conveyMessage` (the NM never handles a VLAN id), and the module then
//! writes the dot1q-tunnel / trunk port configuration into the simulated
//! switch — the CONMan equivalent of the CatOS script in Figure 9(a).

use conman_core::abstraction::{CounterSnapshot, ModuleAbstraction, PipeCounters, SwitchKind};
use conman_core::ids::{ModuleKind, ModuleRef, PipeId};
use conman_core::module::{ModuleCtx, ModuleError, ModuleReaction, ProtocolModule};
use conman_core::primitives::{
    EnvelopeKind, ModuleActual, ModuleEnvelope, Notification, PipeSpec, SwitchSpec,
};
use netsim::config::{BridgeConfig, SwitchPortMode};
use netsim::vlan::VlanId;
use std::collections::BTreeMap;

/// Default VLAN id proposed by the edge module when the goal does not pin
/// one; 22 mirrors the paper's example.
const DEFAULT_VLAN: u16 = 22;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PipeKind {
    /// Customer-facing pipe (no peer at the far end of the provider network).
    Customer,
    /// Pipe towards an adjacent provider switch.
    Trunk,
}

#[derive(Debug, Clone, Default)]
struct TrunkState {
    peer: Option<ModuleRef>,
    initiate: bool,
    sent: bool,
    agreed: bool,
}

/// The VLAN protocol module.
pub struct VlanModule {
    me: ModuleRef,
    pipes: BTreeMap<PipeId, PipeKind>,
    trunks: BTreeMap<PipeId, TrunkState>,
    vlan_id: Option<u16>,
    vlan_name: String,
    pending_switches: Vec<SwitchSpec>,
    applied: Vec<String>,
    notified: bool,
}

impl VlanModule {
    /// Create a VLAN module.
    pub fn new(me: ModuleRef) -> Self {
        VlanModule {
            me,
            pipes: BTreeMap::new(),
            trunks: BTreeMap::new(),
            vlan_id: None,
            vlan_name: "C1".to_string(),
            pending_switches: Vec::new(),
            applied: Vec::new(),
            notified: false,
        }
    }

    fn is_edge(&self) -> bool {
        self.pipes.values().any(|k| *k == PipeKind::Customer)
    }

    fn port_of(ctx: &ModuleCtx, pipe: PipeId) -> Option<u32> {
        ctx.pipe_attr(pipe, "port").and_then(|s| s.parse().ok())
    }

    fn try_apply_switch(
        &mut self,
        ctx: &mut ModuleCtx,
        spec: &SwitchSpec,
    ) -> Option<Vec<Notification>> {
        let vid_raw = self.vlan_id?;
        let vid = VlanId::new(vid_raw)?;
        let in_kind = self.pipes.get(&spec.in_pipe).copied()?;
        let out_kind = self.pipes.get(&spec.out_pipe).copied()?;
        let in_port = Self::port_of(ctx, spec.in_pipe)?;
        let out_port = Self::port_of(ctx, spec.out_pipe)?;
        let bridge = ctx.config.bridge.get_or_insert_with(BridgeConfig::default);
        bridge.declare_vlan(vid, self.vlan_name.clone(), 1504);
        for (kind, port) in [(in_kind, in_port), (out_kind, out_port)] {
            match kind {
                PipeKind::Customer => bridge.set_port(port, SwitchPortMode::Dot1qTunnel(vid)),
                PipeKind::Trunk => bridge.set_port(port, SwitchPortMode::Trunk(vec![vid])),
            }
        }
        self.applied.push(format!(
            "vlan {} between port {} and port {}",
            vid_raw, in_port, out_port
        ));
        let mut notifications = Vec::new();
        // The far-edge switch (an edge module that did not initiate the
        // trunk exchange) confirms the layer-2 tunnel to the NM.
        let egress =
            self.is_edge() && self.trunks.values().all(|t| !t.initiate) && !self.trunks.is_empty();
        if egress && !self.notified {
            self.notified = true;
            notifications.push(Notification {
                from: self.me.clone(),
                body: serde_json::json!({"established": "vlan-tunnel", "vlan": vid_raw}),
            });
        }
        Some(notifications)
    }
}

impl ProtocolModule for VlanModule {
    fn reference(&self) -> ModuleRef {
        self.me.clone()
    }

    fn descriptor(&self) -> ModuleAbstraction {
        let mut a = ModuleAbstraction::empty(self.me.clone());
        a.down_connectable = vec![ModuleKind::Eth];
        a.peerable = vec![ModuleKind::Vlan];
        a.switch.kinds = vec![SwitchKind::DownDown, SwitchKind::DownUp, SwitchKind::UpDown];
        a.perf_reporting = vec!["frames tagged and untagged per VLAN".to_string()];
        a.fast_forwarding = true;
        a
    }

    fn actual(&self, _ctx: &ModuleCtx) -> ModuleActual {
        let mut perf = BTreeMap::new();
        if let Some(v) = self.vlan_id {
            perf.insert("vlan-id".to_string(), v as u64);
        }
        ModuleActual {
            pipes: self.pipes.keys().copied().collect(),
            switch_rules: self.applied.clone(),
            filters: Vec::new(),
            perf_report: perf,
        }
    }

    fn counters(&self, ctx: &ModuleCtx) -> CounterSnapshot {
        // Frames in and out of the ports this module's pipes are bound to,
        // plus the drop reasons of its fault domain (tag filtering, Q-in-Q
        // MTU violations).
        let mut snap = CounterSnapshot::empty(self.me.clone());
        for pipe in self.pipes.keys() {
            if let Some(port) = Self::port_of(ctx, *pipe) {
                let c = ctx.stats.ports.get(&port).copied().unwrap_or_default();
                let counters = PipeCounters {
                    rx_packets: c.rx_packets,
                    tx_packets: c.tx_packets,
                    drops: c.drops,
                };
                snap.totals.absorb(&counters);
                snap.pipes.insert(format!("port{port}:{pipe}"), counters);
            }
        }
        for reason in [
            netsim::stats::DropReason::Filtered,
            netsim::stats::DropReason::MtuExceeded,
        ] {
            if let Some(n) = ctx.stats.drops.get(&reason) {
                snap.drop_breakdown.insert(format!("{reason:?}"), *n);
            }
        }
        snap
    }

    fn create_pipe(
        &mut self,
        _ctx: &mut ModuleCtx,
        spec: &PipeSpec,
    ) -> Result<ModuleReaction, ModuleError> {
        if spec.upper != self.me {
            return Ok(ModuleReaction::none());
        }
        if let Some(name) = spec.resolved.get("vlan-name") {
            self.vlan_name = name.clone();
        }
        if spec.peer_upper.is_some() {
            self.pipes.insert(spec.pipe, PipeKind::Trunk);
            self.trunks.insert(
                spec.pipe,
                TrunkState {
                    peer: spec.peer_upper.clone(),
                    initiate: spec.initiate,
                    ..Default::default()
                },
            );
        } else {
            self.pipes.insert(spec.pipe, PipeKind::Customer);
        }
        Ok(ModuleReaction::none())
    }

    fn create_switch(
        &mut self,
        ctx: &mut ModuleCtx,
        spec: &SwitchSpec,
    ) -> Result<ModuleReaction, ModuleError> {
        let mut reaction = ModuleReaction::none();
        match self.try_apply_switch(ctx, spec) {
            Some(n) => reaction.notifications.extend(n),
            None => self.pending_switches.push(spec.clone()),
        }
        Ok(reaction)
    }

    fn delete(
        &mut self,
        _ctx: &mut ModuleCtx,
        component: &conman_core::primitives::ComponentRef,
    ) -> Result<ModuleReaction, ModuleError> {
        if let conman_core::primitives::ComponentRef::Pipe(pipe) = component {
            self.pipes.remove(pipe);
            self.trunks.remove(pipe);
            self.pending_switches
                .retain(|s| s.in_pipe != *pipe && s.out_pipe != *pipe);
            if self.pipes.is_empty() {
                self.notified = false;
            }
        }
        Ok(ModuleReaction::none())
    }

    fn handle_envelope(
        &mut self,
        _ctx: &mut ModuleCtx,
        env: &ModuleEnvelope,
    ) -> Result<ModuleReaction, ModuleError> {
        let Some(v) = env.body.get("vlan") else {
            return Ok(ModuleReaction::none());
        };
        let vid = v.get("id").and_then(|x| x.as_u64()).unwrap_or(0) as u16;
        let name = v
            .get("name")
            .and_then(|x| x.as_str())
            .unwrap_or("C1")
            .to_string();
        let is_reply = v.get("reply").and_then(|x| x.as_bool()).unwrap_or(false);
        self.vlan_id = Some(vid);
        self.vlan_name = name.clone();
        let pipe = self
            .trunks
            .iter()
            .find(|(_, t)| t.peer.as_ref() == Some(&env.from))
            .map(|(p, _)| *p);
        if let Some(pipe) = pipe {
            let t = self.trunks.get_mut(&pipe).expect("trunk exists");
            t.agreed = true;
            if !is_reply {
                t.sent = true;
                return Ok(ModuleReaction::envelope(ModuleEnvelope {
                    from: self.me.clone(),
                    to: env.from.clone(),
                    kind: EnvelopeKind::Convey,
                    body: serde_json::json!({"vlan": {"id": vid, "name": name, "reply": true}}),
                }));
            }
        }
        Ok(ModuleReaction::none())
    }

    fn poll(&mut self, ctx: &mut ModuleCtx) -> ModuleReaction {
        let mut reaction = ModuleReaction::none();
        // An edge module that initiates a trunk exchange picks the VLAN id.
        if self.vlan_id.is_none() && self.is_edge() && self.trunks.values().any(|t| t.initiate) {
            self.vlan_id = Some(DEFAULT_VLAN);
        }
        if let Some(vid) = self.vlan_id {
            let pipes: Vec<PipeId> = self.trunks.keys().copied().collect();
            for pipe in pipes {
                let t = self.trunks.get(&pipe).expect("trunk exists").clone();
                if t.sent || !t.initiate {
                    continue;
                }
                let Some(peer) = t.peer.clone() else { continue };
                self.trunks.get_mut(&pipe).expect("trunk exists").sent = true;
                reaction.envelopes.push(ModuleEnvelope {
                    from: self.me.clone(),
                    to: peer,
                    kind: EnvelopeKind::Convey,
                    body: serde_json::json!({"vlan": {"id": vid, "name": self.vlan_name, "reply": false}}),
                });
            }
        }
        let pending = std::mem::take(&mut self.pending_switches);
        for spec in pending {
            match self.try_apply_switch(ctx, &spec) {
                Some(n) => reaction.notifications.extend(n),
                None => self.pending_switches.push(spec),
            }
        }
        reaction
    }
}
