//! Builders that attach CONMan management agents (with the right protocol
//! modules) to simulated devices, recreating the module maps of the paper's
//! Figures 2 and 4.

use crate::eth::EthModule;
use crate::gre::GreModule;
use crate::ip::IpModule;
use crate::mpls::MplsModule;
use crate::vlan::VlanModule;
use conman_core::agent::ManagementAgent;
use conman_core::ids::{ModuleId, ModuleKind, ModuleRef};
use netsim::device::{Device, PortId};
use std::net::Ipv4Addr;

/// Plan for an ISP router's module set (Figure 4(b)).
#[derive(Debug, Clone)]
pub struct RouterPlan {
    /// Customer-facing port, if this is an edge router.
    pub customer_port: Option<u32>,
    /// Core-facing ports.
    pub core_ports: Vec<u32>,
    /// Address domain of the customer VRF ("customer1").
    pub customer_domain: String,
    /// Instantiate a GRE module?
    pub with_gre: bool,
    /// Instantiate an MPLS module?
    pub with_mpls: bool,
}

impl RouterPlan {
    /// An edge router (Routers A and C in the paper).
    pub fn edge(customer_port: u32, core_ports: Vec<u32>) -> Self {
        RouterPlan {
            customer_port: Some(customer_port),
            core_ports,
            customer_domain: "customer1".to_string(),
            with_gre: true,
            with_mpls: true,
        }
    }

    /// A core router (Router B in the paper): no customer VRF, no GRE.
    pub fn core(core_ports: Vec<u32>) -> Self {
        RouterPlan {
            customer_port: None,
            core_ports,
            customer_domain: "customer1".to_string(),
            with_gre: false,
            with_mpls: true,
        }
    }
}

fn addr_on(device: &Device, port: u32) -> Ipv4Addr {
    device
        .config
        .address_on_port(port)
        .map(|c| c.addr)
        .unwrap_or(Ipv4Addr::UNSPECIFIED)
}

/// Build the management agent of an ISP router according to `plan`.
///
/// Module-id assignment is sequential; the customer-facing IP module (the
/// "virtual router" connected to the customer site) is created first so the
/// module map mirrors Figure 4(b).
pub fn build_router_agent(device: &Device, plan: &RouterPlan) -> ManagementAgent {
    let mut agent = ManagementAgent::new(device.id, device.name.clone());
    let mut next = 1u32;
    let mut next_id = || {
        let id = ModuleId(next);
        next += 1;
        id
    };

    // ETH modules: customer-facing first, then core-facing.
    let eth_up = vec![ModuleKind::Ip, ModuleKind::Mpls];
    if let Some(p) = plan.customer_port {
        let r = ModuleRef::new(ModuleKind::Eth, next_id(), device.id);
        agent.register(Box::new(EthModule::new(r, PortId(p), eth_up.clone())));
    }
    for p in &plan.core_ports {
        let r = ModuleRef::new(ModuleKind::Eth, next_id(), device.id);
        agent.register(Box::new(EthModule::new(r, PortId(*p), eth_up.clone())));
    }

    // Customer VRF IP module (edge routers only).
    if let Some(p) = plan.customer_port {
        let r = ModuleRef::new(ModuleKind::Ip, next_id(), device.id);
        agent.register(Box::new(IpModule::new(
            r,
            plan.customer_domain.clone(),
            addr_on(device, p),
        )));
    }
    // ISP IP module.
    let isp_primary = plan
        .core_ports
        .first()
        .map(|p| addr_on(device, *p))
        .unwrap_or(Ipv4Addr::UNSPECIFIED);
    let r = ModuleRef::new(ModuleKind::Ip, next_id(), device.id);
    agent.register(Box::new(IpModule::new(r, "isp", isp_primary)));

    if plan.with_gre {
        let r = ModuleRef::new(ModuleKind::Gre, next_id(), device.id);
        agent.register(Box::new(GreModule::new(r)));
    }
    if plan.with_mpls {
        let r = ModuleRef::new(ModuleKind::Mpls, next_id(), device.id);
        agent.register(Box::new(MplsModule::new(r)));
    }
    agent
}

/// Build the agent of a provider VLAN switch (Figure 9): one ETH module per
/// port (all of which can carry a VLAN module above them) plus one VLAN
/// module.
pub fn build_vlan_switch_agent(device: &Device, ports: &[u32]) -> ManagementAgent {
    let mut agent = ManagementAgent::new(device.id, device.name.clone());
    let mut next = 1u32;
    for p in ports {
        let r = ModuleRef::new(ModuleKind::Eth, ModuleId(next), device.id);
        next += 1;
        agent.register(Box::new(EthModule::new(
            r,
            PortId(*p),
            vec![ModuleKind::Vlan],
        )));
    }
    let r = ModuleRef::new(ModuleKind::Vlan, ModuleId(next), device.id);
    agent.register(Box::new(VlanModule::new(r)));
    agent
}

/// Build the agent of a plain layer-2 switch (device C of Figure 2): a single
/// ETH module spanning every port, capable of `[phy => phy]` switching.
pub fn build_l2_switch_agent(device: &Device) -> ManagementAgent {
    let mut agent = ManagementAgent::new(device.id, device.name.clone());
    let ports: Vec<PortId> = device.ports.iter().map(|p| PortId(p.index)).collect();
    let r = ModuleRef::new(ModuleKind::Eth, ModuleId(1), device.id);
    agent.register(Box::new(EthModule::layer2_switch(r, ports)));
    agent
}

/// Build the agent of an end host participating in a GRE tunnel (devices A
/// and B of Figure 2): an overlay IP module, a GRE module, an underlay IP
/// module and an ETH module.
pub fn build_tunnel_host_agent(
    device: &Device,
    port: u32,
    overlay_domain: &str,
) -> ManagementAgent {
    let mut agent = ManagementAgent::new(device.id, device.name.clone());
    let eth = ModuleRef::new(ModuleKind::Eth, ModuleId(1), device.id);
    agent.register(Box::new(EthModule::new(
        eth,
        PortId(port),
        vec![ModuleKind::Ip, ModuleKind::Mpls],
    )));
    let overlay = ModuleRef::new(ModuleKind::Ip, ModuleId(2), device.id);
    agent.register(Box::new(IpModule::new(
        overlay,
        overlay_domain,
        addr_on(device, port),
    )));
    let underlay = ModuleRef::new(ModuleKind::Ip, ModuleId(3), device.id);
    agent.register(Box::new(IpModule::new(
        underlay,
        "isp",
        addr_on(device, port),
    )));
    let gre = ModuleRef::new(ModuleKind::Gre, ModuleId(4), device.id);
    agent.register(Box::new(GreModule::new(gre)));
    agent
}

/// Build the agent of the Figure 2 router D: two ETH modules and one ISP IP
/// module.
pub fn build_plain_router_agent(device: &Device, ports: &[u32]) -> ManagementAgent {
    let mut agent = ManagementAgent::new(device.id, device.name.clone());
    let mut next = 1u32;
    for p in ports {
        let r = ModuleRef::new(ModuleKind::Eth, ModuleId(next), device.id);
        next += 1;
        agent.register(Box::new(EthModule::new(
            r,
            PortId(*p),
            vec![ModuleKind::Ip, ModuleKind::Mpls],
        )));
    }
    let primary = ports
        .first()
        .map(|p| addr_on(device, *p))
        .unwrap_or(Ipv4Addr::UNSPECIFIED);
    let r = ModuleRef::new(ModuleKind::Ip, ModuleId(next), device.id);
    agent.register(Box::new(IpModule::new(r, "isp", primary)));
    agent
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::device::DeviceRole;
    use netsim::ipv4::Ipv4Cidr;

    #[test]
    fn edge_router_has_the_figure4_module_set() {
        let mut d = Device::new("RouterA", DeviceRole::Router, 3);
        d.config
            .assign_address(0, "192.168.0.2/24".parse::<Ipv4Cidr>().unwrap());
        d.config
            .assign_address(2, "204.9.168.1/24".parse::<Ipv4Cidr>().unwrap());
        let agent = build_router_agent(&d, &RouterPlan::edge(0, vec![2]));
        // ETH a, ETH b, IP g, IP h, GRE l, MPLS o
        assert_eq!(agent.module_count(), 6);
        let kinds: Vec<ModuleKind> = agent.module_refs().into_iter().map(|r| r.kind).collect();
        assert_eq!(kinds.iter().filter(|k| **k == ModuleKind::Eth).count(), 2);
        assert_eq!(kinds.iter().filter(|k| **k == ModuleKind::Ip).count(), 2);
        assert!(kinds.contains(&ModuleKind::Gre));
        assert!(kinds.contains(&ModuleKind::Mpls));
    }

    #[test]
    fn core_router_has_no_customer_vrf_or_gre() {
        let mut d = Device::new("RouterB", DeviceRole::Router, 3);
        d.config
            .assign_address(1, "204.9.168.2/24".parse::<Ipv4Cidr>().unwrap());
        d.config
            .assign_address(2, "204.9.169.2/24".parse::<Ipv4Cidr>().unwrap());
        let agent = build_router_agent(&d, &RouterPlan::core(vec![1, 2]));
        // ETH c, ETH d, IP i, MPLS p
        assert_eq!(agent.module_count(), 4);
        let kinds: Vec<ModuleKind> = agent.module_refs().into_iter().map(|r| r.kind).collect();
        assert!(!kinds.contains(&ModuleKind::Gre));
        assert_eq!(kinds.iter().filter(|k| **k == ModuleKind::Ip).count(), 1);
    }

    #[test]
    fn vlan_switch_and_l2_switch_agents() {
        let d = Device::new("SwitchA", DeviceRole::Switch, 3);
        let agent = build_vlan_switch_agent(&d, &[0, 1, 2]);
        assert_eq!(agent.module_count(), 4);
        let agent = build_l2_switch_agent(&d);
        assert_eq!(agent.module_count(), 1);
    }
}
