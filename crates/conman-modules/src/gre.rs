//! The GRE protocol module (§III-B, Table III).
//!
//! The module keeps every GRE-specific detail — key values, sequence
//! numbers, checksums, the tunnel endpoints — away from the NM.  The NM only
//! ever says "create a pipe with in-order delivery and low error-rate"; the
//! GRE module negotiates keys and options with its peer GRE module through
//! `conveyMessage` and eventually writes the tunnel into the device
//! configuration (the equivalent of the `ip tunnel add ... ikey 1001 okey
//! 2001 icsum ocsum iseq oseq` line of Figure 7(a)).

use conman_core::abstraction::{
    CounterSnapshot, Dependency, ModuleAbstraction, PerfTradeoff, PerformanceMetric, PipeCounters,
    SwitchKind,
};
use conman_core::ids::{ModuleKind, ModuleRef, PipeId};
use conman_core::module::{ModuleCtx, ModuleError, ModuleReaction, ProtocolModule};
use conman_core::primitives::{
    ComponentRef, EnvelopeKind, ModuleActual, ModuleEnvelope, PipeSpec, SwitchSpec, TradeoffChoice,
};
use netsim::config::TunnelConfig;
use netsim::stats::DropReason;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Negotiated GRE parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GreParams {
    ikey: u32,
    okey: u32,
    sequencing: bool,
    checksums: bool,
}

/// The GRE protocol module.
pub struct GreModule {
    me: ModuleRef,
    /// The pipe to the payload protocol above (e.g. the customer IP module).
    up_pipe: Option<PipeId>,
    /// The pipe to the delivery protocol below (the ISP IP module).
    down_pipe: Option<PipeId>,
    peer: Option<ModuleRef>,
    /// Trade-offs requested by the NM when the up pipe was created.
    wants_sequencing: bool,
    wants_checksums: bool,
    params: Option<GreParams>,
    pending_switch: bool,
    configured_tunnel: Option<u32>,
}

impl GreModule {
    /// Create a GRE module.
    pub fn new(me: ModuleRef) -> Self {
        GreModule {
            me,
            up_pipe: None,
            down_pipe: None,
            peer: None,
            wants_sequencing: false,
            wants_checksums: false,
            params: None,
            pending_switch: false,
            configured_tunnel: None,
        }
    }

    /// Deterministic key material derived from the two endpoints' device
    /// identifiers — the NM never sees or chooses these.
    fn propose_keys(&self, peer: &ModuleRef) -> (u32, u32) {
        let a = 1000 + (self.me.device.as_u64() % 997) as u32 + 1;
        let b = 2000 + (peer.device.as_u64() % 997) as u32 + 1;
        (a, b)
    }
}

impl ProtocolModule for GreModule {
    fn reference(&self) -> ModuleRef {
        self.me.clone()
    }

    fn descriptor(&self) -> ModuleAbstraction {
        // Table III.
        let mut a = ModuleAbstraction::empty(self.me.clone());
        a.up_connectable = vec![ModuleKind::Ip];
        a.up_dependencies = vec![Dependency::new(
            "tradeoffs",
            "Performance Trade-offs to be specified",
        )];
        a.down_connectable = vec![ModuleKind::Ip];
        a.peerable = vec![ModuleKind::Gre];
        a.switch.kinds = vec![SwitchKind::UpDown, SwitchKind::DownUp];
        a.perf_reporting =
            vec!["number of received and transmitted packets on each up and down pipe".to_string()];
        a.perf_tradeoffs = vec![
            PerfTradeoff {
                costs: vec![PerformanceMetric::Jitter, PerformanceMetric::Delay],
                improves: vec![PerformanceMetric::Ordering],
                applies_to: "Up-pipe".to_string(),
            },
            PerfTradeoff {
                costs: vec![PerformanceMetric::LossRate],
                improves: vec![PerformanceMetric::ErrorRate],
                applies_to: "Up-pipe".to_string(),
            },
        ];
        a
    }

    fn actual(&self, ctx: &ModuleCtx) -> ModuleActual {
        let mut perf = BTreeMap::new();
        if let Some(id) = self.configured_tunnel {
            if let Some(t) = ctx.config.tunnels.get(&id) {
                perf.insert("tunnel-configured".to_string(), 1);
                perf.insert("okey".to_string(), t.okey.unwrap_or(0) as u64);
            }
        }
        ModuleActual {
            pipes: self
                .up_pipe
                .iter()
                .chain(self.down_pipe.iter())
                .copied()
                .collect(),
            switch_rules: if self.configured_tunnel.is_some() {
                vec![format!("{:?} <=> {:?}", self.up_pipe, self.down_pipe)]
            } else {
                Vec::new()
            },
            filters: Vec::new(),
            perf_report: perf,
        }
    }

    fn counters(&self, ctx: &ModuleCtx) -> CounterSnapshot {
        // Table III row x: packets received and transmitted per pipe.  The
        // up pipe carries decapsulated customer packets (tunnel rx) and the
        // down pipe carries encapsulated ones (tunnel tx).
        let mut snap = CounterSnapshot::empty(self.me.clone());
        if let Some(id) = self.configured_tunnel {
            let c = ctx.stats.tunnels.get(&id).copied().unwrap_or_default();
            if let Some(up) = self.up_pipe {
                snap.pipes.insert(
                    format!("up:{up}"),
                    PipeCounters {
                        rx_packets: c.tx_packets, // handed down by the payload protocol
                        tx_packets: c.rx_packets, // handed up after decapsulation
                        drops: 0,
                    },
                );
            }
            if let Some(down) = self.down_pipe {
                snap.pipes.insert(
                    format!("down:{down}"),
                    PipeCounters {
                        rx_packets: c.rx_packets,
                        tx_packets: c.tx_packets,
                        drops: c.drops,
                    },
                );
            }
            snap.totals = PipeCounters {
                rx_packets: c.rx_packets,
                tx_packets: c.tx_packets,
                drops: c.drops,
            };
        }
        // Key/sequencing/checksum mismatches are this module's fault domain.
        if let Some(n) = ctx.stats.drops.get(&DropReason::TunnelMismatch) {
            snap.drop_breakdown
                .insert(format!("{:?}", DropReason::TunnelMismatch), *n);
        }
        snap
    }

    fn delete(
        &mut self,
        ctx: &mut ModuleCtx,
        component: &ComponentRef,
    ) -> Result<ModuleReaction, ModuleError> {
        let ComponentRef::Pipe(pipe) = component else {
            return Ok(ModuleReaction::none());
        };
        if Some(*pipe) != self.up_pipe && Some(*pipe) != self.down_pipe {
            return Ok(ModuleReaction::none());
        }
        // Losing either pipe tears the tunnel down; the module returns to
        // its unconfigured state so a later path can rebuild it.
        if let Some(id) = self.configured_tunnel.take() {
            ctx.config.tunnels.remove(&id);
        }
        if Some(*pipe) == self.up_pipe {
            self.up_pipe = None;
        } else {
            self.down_pipe = None;
        }
        self.params = None;
        self.pending_switch = false;
        Ok(ModuleReaction::none())
    }

    fn create_pipe(
        &mut self,
        _ctx: &mut ModuleCtx,
        spec: &PipeSpec,
    ) -> Result<ModuleReaction, ModuleError> {
        if spec.lower == self.me {
            // Our up pipe: the module above us is the payload protocol.
            if spec.tradeoffs.is_empty() {
                return Err(ModuleError::MissingDependency(
                    "performance trade-offs must be specified for a GRE up pipe".to_string(),
                ));
            }
            // This module carries a single tunnel: a second concurrent goal
            // must fail its transaction (and roll back cleanly) rather than
            // silently hijack the configured tunnel's state.
            if self.up_pipe.is_some_and(|p| p != spec.pipe) {
                return Err(ModuleError::Unsupported(
                    "GRE module already carries a tunnel for another goal".to_string(),
                ));
            }
            self.up_pipe = Some(spec.pipe);
            self.peer = spec.peer_lower.clone();
            self.wants_sequencing = spec.tradeoffs.contains(&TradeoffChoice::InOrderDelivery);
            self.wants_checksums = spec.tradeoffs.contains(&TradeoffChoice::LowErrorRate);
            if spec.initiate {
                if let Some(peer) = &self.peer {
                    let (ikey, okey) = self.propose_keys(peer);
                    self.params = Some(GreParams {
                        ikey,
                        okey,
                        sequencing: self.wants_sequencing,
                        checksums: self.wants_checksums,
                    });
                    return Ok(ModuleReaction::envelope(ModuleEnvelope {
                        from: self.me.clone(),
                        to: peer.clone(),
                        kind: EnvelopeKind::Convey,
                        body: serde_json::json!({
                            "propose": {
                                // The key the proposer will accept (peer's okey)
                                "your_okey": ikey,
                                // The key the responder should accept (proposer's okey)
                                "your_ikey": okey,
                                "sequencing": self.wants_sequencing,
                                "checksums": self.wants_checksums,
                            }
                        }),
                    }));
                }
            }
        } else if spec.upper == self.me {
            // Our down pipe: the delivery protocol below us.
            if self.down_pipe.is_some_and(|p| p != spec.pipe) {
                return Err(ModuleError::Unsupported(
                    "GRE module already carries a tunnel for another goal".to_string(),
                ));
            }
            self.down_pipe = Some(spec.pipe);
        }
        Ok(ModuleReaction::none())
    }

    fn create_switch(
        &mut self,
        _ctx: &mut ModuleCtx,
        _spec: &SwitchSpec,
    ) -> Result<ModuleReaction, ModuleError> {
        self.pending_switch = true;
        Ok(ModuleReaction::none())
    }

    fn handle_envelope(
        &mut self,
        _ctx: &mut ModuleCtx,
        env: &ModuleEnvelope,
    ) -> Result<ModuleReaction, ModuleError> {
        if let Some(p) = env.body.get("propose") {
            let ikey = p.get("your_ikey").and_then(|v| v.as_u64()).unwrap_or(0) as u32;
            let okey = p.get("your_okey").and_then(|v| v.as_u64()).unwrap_or(0) as u32;
            let sequencing = p
                .get("sequencing")
                .and_then(|v| v.as_bool())
                .unwrap_or(false);
            let checksums = p
                .get("checksums")
                .and_then(|v| v.as_bool())
                .unwrap_or(false);
            self.params = Some(GreParams {
                ikey,
                okey,
                sequencing,
                checksums,
            });
            self.wants_sequencing = sequencing;
            self.wants_checksums = checksums;
            return Ok(ModuleReaction::envelope(ModuleEnvelope {
                from: self.me.clone(),
                to: env.from.clone(),
                kind: EnvelopeKind::Convey,
                body: serde_json::json!({"accept": true}),
            }));
        }
        // "accept": nothing further to do, the proposal already holds our
        // parameters.
        Ok(ModuleReaction::none())
    }

    fn poll(&mut self, ctx: &mut ModuleCtx) -> ModuleReaction {
        if self.configured_tunnel.is_some() || !self.pending_switch {
            return ModuleReaction::none();
        }
        let (Some(up), Some(down), Some(params)) = (self.up_pipe, self.down_pipe, self.params)
        else {
            return ModuleReaction::none();
        };
        let (Some(local), Some(remote)) = (
            ctx.pipe_attr(down, "local_addr")
                .and_then(|s| s.parse::<Ipv4Addr>().ok()),
            ctx.pipe_attr(down, "remote_addr")
                .and_then(|s| s.parse::<Ipv4Addr>().ok()),
        ) else {
            return ModuleReaction::none();
        };
        let id = ctx.config.tunnels.keys().max().copied().unwrap_or(0) + 1;
        let mut t = TunnelConfig::gre(id, format!("gre-{}-{}", up, down), local, remote);
        t.ikey = Some(params.ikey);
        t.okey = Some(params.okey);
        t.iseq = params.sequencing;
        t.oseq = params.sequencing;
        t.icsum = params.checksums;
        t.ocsum = params.checksums;
        ctx.config.tunnels.insert(id, t);
        ctx.set_pipe_attr(up, "attach", format!("tunnel:{id}"));
        self.configured_tunnel = Some(id);
        ModuleReaction::none()
    }
}
