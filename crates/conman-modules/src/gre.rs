//! The GRE protocol module (§III-B, Table III).
//!
//! The module keeps every GRE-specific detail — key values, sequence
//! numbers, checksums, the tunnel endpoints — away from the NM.  The NM only
//! ever says "create a pipe with in-order delivery and low error-rate"; the
//! GRE module negotiates keys and options with its peer GRE module through
//! `conveyMessage` and eventually writes the tunnel into the device
//! configuration (the equivalent of the `ip tunnel add ... ikey 1001 okey
//! 2001 icsum ocsum iseq oseq` line of Figure 7(a)).
//!
//! One module instance carries **multiple tunnels**, keyed by pipe: each
//! concurrent goal's path contributes its own up/down pipe pair, gets its
//! own negotiated key material (derived per pipe, so tunnels between the
//! same endpoints stay demultiplexable) and its own tunnel in the device
//! configuration.  Two goals can therefore share an edge GRE module the
//! same way they share IP and MPLS modules, instead of the second goal
//! failing its transaction.

use conman_core::abstraction::{
    CounterSnapshot, Dependency, ModuleAbstraction, PerfTradeoff, PerformanceMetric, PipeCounters,
    SwitchKind,
};
use conman_core::ids::{ModuleKind, ModuleRef, PipeId};
use conman_core::module::{ModuleCtx, ModuleError, ModuleReaction, ProtocolModule};
use conman_core::primitives::{
    ComponentRef, EnvelopeKind, ModuleActual, ModuleEnvelope, PipeSpec, SwitchSpec, TradeoffChoice,
};
use netsim::config::TunnelConfig;
use netsim::stats::DropReason;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Negotiated GRE parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GreParams {
    ikey: u32,
    okey: u32,
    sequencing: bool,
    checksums: bool,
}

/// One tunnel's worth of state: the up/down pipe pair a goal's path
/// contributed, the negotiated parameters, and the configured tunnel id.
#[derive(Debug, Clone)]
struct TunnelSlot {
    /// The pipe to the payload protocol above (e.g. the customer IP module).
    up_pipe: Option<PipeId>,
    /// The pipe to the delivery protocol below (the ISP IP module).
    down_pipe: Option<PipeId>,
    peer: Option<ModuleRef>,
    /// Trade-offs requested by the NM when the up pipe was created.
    wants_sequencing: bool,
    wants_checksums: bool,
    params: Option<GreParams>,
    pending_switch: bool,
    configured_tunnel: Option<u32>,
}

impl TunnelSlot {
    fn new() -> Self {
        TunnelSlot {
            up_pipe: None,
            down_pipe: None,
            peer: None,
            wants_sequencing: false,
            wants_checksums: false,
            params: None,
            pending_switch: false,
            configured_tunnel: None,
        }
    }

    fn holds(&self, pipe: PipeId) -> bool {
        self.up_pipe == Some(pipe) || self.down_pipe == Some(pipe)
    }
}

/// The GRE protocol module.
pub struct GreModule {
    me: ModuleRef,
    /// Tunnel slots in creation order.  A goal's segment creates its up and
    /// down pipes together (segments commit whole, never interleaved with a
    /// sibling goal's), so "the slot still missing this side" is
    /// unambiguous while a slot is being assembled.
    slots: Vec<TunnelSlot>,
}

impl GreModule {
    /// Create a GRE module.
    pub fn new(me: ModuleRef) -> Self {
        GreModule {
            me,
            slots: Vec::new(),
        }
    }

    /// Deterministic key material derived from the two endpoints' device
    /// identifiers and the up pipe — the NM never sees or chooses these.
    /// Mixing the pipe in keeps concurrent tunnels between the *same* two
    /// devices on distinct keys, which is what lets the receive side
    /// demultiplex them.
    fn propose_keys(&self, peer: &ModuleRef, up_pipe: PipeId) -> (u32, u32) {
        let salt = 7 * up_pipe.0;
        let a = 1000 + (self.me.device.as_u64() % 997) as u32 + 1 + salt;
        let b = 2000 + (peer.device.as_u64() % 997) as u32 + 1 + salt;
        (a, b)
    }

    /// The slot holding `pipe` (either side), if any.
    fn slot_with_pipe(&mut self, pipe: PipeId) -> Option<&mut TunnelSlot> {
        self.slots.iter_mut().find(|s| s.holds(pipe))
    }
}

impl ProtocolModule for GreModule {
    fn reference(&self) -> ModuleRef {
        self.me.clone()
    }

    fn descriptor(&self) -> ModuleAbstraction {
        // Table III.
        let mut a = ModuleAbstraction::empty(self.me.clone());
        a.up_connectable = vec![ModuleKind::Ip];
        a.up_dependencies = vec![Dependency::new(
            "tradeoffs",
            "Performance Trade-offs to be specified",
        )];
        a.down_connectable = vec![ModuleKind::Ip];
        a.peerable = vec![ModuleKind::Gre];
        a.switch.kinds = vec![SwitchKind::UpDown, SwitchKind::DownUp];
        a.perf_reporting =
            vec!["number of received and transmitted packets on each up and down pipe".to_string()];
        a.perf_tradeoffs = vec![
            PerfTradeoff {
                costs: vec![PerformanceMetric::Jitter, PerformanceMetric::Delay],
                improves: vec![PerformanceMetric::Ordering],
                applies_to: "Up-pipe".to_string(),
            },
            PerfTradeoff {
                costs: vec![PerformanceMetric::LossRate],
                improves: vec![PerformanceMetric::ErrorRate],
                applies_to: "Up-pipe".to_string(),
            },
        ];
        a
    }

    fn actual(&self, ctx: &ModuleCtx) -> ModuleActual {
        let mut perf = BTreeMap::new();
        let mut switch_rules = Vec::new();
        let mut configured = 0u64;
        for slot in &self.slots {
            if let Some(id) = slot.configured_tunnel {
                if let Some(t) = ctx.config.tunnels.get(&id) {
                    configured += 1;
                    perf.insert(format!("okey:{id}"), t.okey.unwrap_or(0) as u64);
                }
                switch_rules.push(format!("{:?} <=> {:?}", slot.up_pipe, slot.down_pipe));
            }
        }
        if configured > 0 {
            perf.insert("tunnels-configured".to_string(), configured);
        }
        ModuleActual {
            pipes: self
                .slots
                .iter()
                .flat_map(|s| s.up_pipe.iter().chain(s.down_pipe.iter()).copied())
                .collect(),
            switch_rules,
            filters: Vec::new(),
            perf_report: perf,
        }
    }

    fn counters(&self, ctx: &ModuleCtx) -> CounterSnapshot {
        // Table III row x: packets received and transmitted per pipe.  Each
        // slot's up pipe carries decapsulated customer packets (tunnel rx)
        // and its down pipe the encapsulated ones (tunnel tx); totals sum
        // over every tunnel the module carries.
        let mut snap = CounterSnapshot::empty(self.me.clone());
        for slot in &self.slots {
            let Some(id) = slot.configured_tunnel else {
                continue;
            };
            let c = ctx.stats.tunnels.get(&id).copied().unwrap_or_default();
            if let Some(up) = slot.up_pipe {
                snap.pipes.insert(
                    format!("up:{up}"),
                    PipeCounters {
                        rx_packets: c.tx_packets, // handed down by the payload protocol
                        tx_packets: c.rx_packets, // handed up after decapsulation
                        drops: 0,
                    },
                );
            }
            if let Some(down) = slot.down_pipe {
                snap.pipes.insert(
                    format!("down:{down}"),
                    PipeCounters {
                        rx_packets: c.rx_packets,
                        tx_packets: c.tx_packets,
                        drops: c.drops,
                    },
                );
            }
            snap.totals.rx_packets += c.rx_packets;
            snap.totals.tx_packets += c.tx_packets;
            snap.totals.drops += c.drops;
        }
        // Key/sequencing/checksum mismatches are this module's fault domain.
        if let Some(n) = ctx.stats.drops.get(&DropReason::TunnelMismatch) {
            snap.drop_breakdown
                .insert(format!("{:?}", DropReason::TunnelMismatch), *n);
        }
        snap
    }

    fn delete(
        &mut self,
        ctx: &mut ModuleCtx,
        component: &ComponentRef,
    ) -> Result<ModuleReaction, ModuleError> {
        let ComponentRef::Pipe(pipe) = component else {
            return Ok(ModuleReaction::none());
        };
        let Some(slot) = self.slot_with_pipe(*pipe) else {
            return Ok(ModuleReaction::none());
        };
        // Losing either pipe tears that slot's tunnel down; sibling goals'
        // tunnels through this module are untouched.
        if let Some(id) = slot.configured_tunnel.take() {
            ctx.config.tunnels.remove(&id);
        }
        if slot.up_pipe == Some(*pipe) {
            slot.up_pipe = None;
        } else {
            slot.down_pipe = None;
        }
        slot.params = None;
        slot.pending_switch = false;
        self.slots
            .retain(|s| s.up_pipe.is_some() || s.down_pipe.is_some());
        Ok(ModuleReaction::none())
    }

    fn create_pipe(
        &mut self,
        _ctx: &mut ModuleCtx,
        spec: &PipeSpec,
    ) -> Result<ModuleReaction, ModuleError> {
        if spec.lower == self.me {
            // Our up pipe: the module above us is the payload protocol.
            if spec.tradeoffs.is_empty() {
                return Err(ModuleError::MissingDependency(
                    "performance trade-offs must be specified for a GRE up pipe".to_string(),
                ));
            }
            // Find the slot this pipe belongs to: re-creation of a known
            // pipe is idempotent, otherwise fill the slot still missing its
            // up side (its down pipe arrived first), otherwise start a new
            // tunnel slot.
            let idx = self
                .slots
                .iter()
                .position(|s| s.up_pipe == Some(spec.pipe))
                .or_else(|| self.slots.iter().position(|s| s.up_pipe.is_none()))
                .unwrap_or_else(|| {
                    self.slots.push(TunnelSlot::new());
                    self.slots.len() - 1
                });
            let slot = &mut self.slots[idx];
            slot.up_pipe = Some(spec.pipe);
            slot.peer = spec.peer_lower.clone();
            slot.wants_sequencing = spec.tradeoffs.contains(&TradeoffChoice::InOrderDelivery);
            slot.wants_checksums = spec.tradeoffs.contains(&TradeoffChoice::LowErrorRate);
            if spec.initiate {
                if let Some(peer) = slot.peer.clone() {
                    let (ikey, okey) = self.propose_keys(&peer, spec.pipe);
                    let slot = &mut self.slots[idx];
                    slot.params = Some(GreParams {
                        ikey,
                        okey,
                        sequencing: slot.wants_sequencing,
                        checksums: slot.wants_checksums,
                    });
                    return Ok(ModuleReaction::envelope(ModuleEnvelope {
                        from: self.me.clone(),
                        to: peer,
                        kind: EnvelopeKind::Convey,
                        body: serde_json::json!({
                            "propose": {
                                // The key the proposer will accept (peer's okey)
                                "your_okey": ikey,
                                // The key the responder should accept (proposer's okey)
                                "your_ikey": okey,
                                "sequencing": self.slots[idx].wants_sequencing,
                                "checksums": self.slots[idx].wants_checksums,
                            }
                        }),
                    }));
                }
            }
        } else if spec.upper == self.me {
            // Our down pipe: the delivery protocol below us.
            let idx = self
                .slots
                .iter()
                .position(|s| s.down_pipe == Some(spec.pipe))
                .or_else(|| self.slots.iter().position(|s| s.down_pipe.is_none()))
                .unwrap_or_else(|| {
                    self.slots.push(TunnelSlot::new());
                    self.slots.len() - 1
                });
            self.slots[idx].down_pipe = Some(spec.pipe);
        }
        Ok(ModuleReaction::none())
    }

    fn create_switch(
        &mut self,
        _ctx: &mut ModuleCtx,
        spec: &SwitchSpec,
    ) -> Result<ModuleReaction, ModuleError> {
        // Arm the slot the switch's pipes belong to (falling back to every
        // unarmed slot for specs that predate multi-tunnel modules).
        let mut armed = false;
        for slot in &mut self.slots {
            if slot.holds(spec.in_pipe) || slot.holds(spec.out_pipe) {
                slot.pending_switch = true;
                armed = true;
            }
        }
        if !armed {
            for slot in &mut self.slots {
                slot.pending_switch = true;
            }
        }
        Ok(ModuleReaction::none())
    }

    fn handle_envelope(
        &mut self,
        _ctx: &mut ModuleCtx,
        env: &ModuleEnvelope,
    ) -> Result<ModuleReaction, ModuleError> {
        if let Some(p) = env.body.get("propose") {
            let ikey = p.get("your_ikey").and_then(|v| v.as_u64()).unwrap_or(0) as u32;
            let okey = p.get("your_okey").and_then(|v| v.as_u64()).unwrap_or(0) as u32;
            let sequencing = p
                .get("sequencing")
                .and_then(|v| v.as_bool())
                .unwrap_or(false);
            let checksums = p
                .get("checksums")
                .and_then(|v| v.as_bool())
                .unwrap_or(false);
            // Match the proposal to the oldest slot still negotiating with
            // this peer.  Both ends commit their goals in the same order
            // (batch segment order is global to the pass), so oldest-first
            // pairs the k-th proposal with the k-th slot.
            let Some(slot) = self.slots.iter_mut().find(|s| {
                s.params.is_none() && s.peer.as_ref().is_none_or(|peer| *peer == env.from)
            }) else {
                // No slot is waiting on a proposal (e.g. a stale retransmit
                // after teardown): acknowledge without state.
                return Ok(ModuleReaction::none());
            };
            slot.params = Some(GreParams {
                ikey,
                okey,
                sequencing,
                checksums,
            });
            slot.wants_sequencing = sequencing;
            slot.wants_checksums = checksums;
            slot.peer.get_or_insert_with(|| env.from.clone());
            return Ok(ModuleReaction::envelope(ModuleEnvelope {
                from: self.me.clone(),
                to: env.from.clone(),
                kind: EnvelopeKind::Convey,
                body: serde_json::json!({"accept": true}),
            }));
        }
        // "accept": nothing further to do, the proposal already holds our
        // parameters.
        Ok(ModuleReaction::none())
    }

    fn poll(&mut self, ctx: &mut ModuleCtx) -> ModuleReaction {
        for slot in &mut self.slots {
            if slot.configured_tunnel.is_some() || !slot.pending_switch {
                continue;
            }
            let (Some(up), Some(down), Some(params)) = (slot.up_pipe, slot.down_pipe, slot.params)
            else {
                continue;
            };
            let (Some(local), Some(remote)) = (
                ctx.pipe_attr(down, "local_addr")
                    .and_then(|s| s.parse::<Ipv4Addr>().ok()),
                ctx.pipe_attr(down, "remote_addr")
                    .and_then(|s| s.parse::<Ipv4Addr>().ok()),
            ) else {
                continue;
            };
            let id = ctx.config.tunnels.keys().max().copied().unwrap_or(0) + 1;
            let mut t = TunnelConfig::gre(id, format!("gre-{}-{}", up, down), local, remote);
            t.ikey = Some(params.ikey);
            t.okey = Some(params.okey);
            t.iseq = params.sequencing;
            t.oseq = params.sequencing;
            t.icsum = params.checksums;
            t.ocsum = params.checksums;
            ctx.config.tunnels.insert(id, t);
            ctx.set_pipe_attr(up, "attach", format!("tunnel:{id}"));
            slot.configured_tunnel = Some(id);
        }
        ModuleReaction::none()
    }
}
