//! The Ethernet (ETH) protocol module.
//!
//! An ETH module is bound to one or more physical ports.  Its main job in
//! the management plane is to advertise its physical pipes and, when a pipe
//! to an upper module is created, to tell the other modules on the device
//! (via the blackboard) which port underlies that pipe — the equivalent of
//! `dev eth2` showing up in the Linux commands of Figure 7(a).

use conman_core::abstraction::{
    CounterSnapshot, ModuleAbstraction, PhysicalPipeInfo, PipeCounters, SwitchKind,
};
use conman_core::ids::{ModuleKind, ModuleRef};
use conman_core::module::{ModuleCtx, ModuleError, ModuleReaction, ProtocolModule};
use conman_core::primitives::{ComponentRef, ModuleActual, PipeSpec, SwitchSpec};
use netsim::device::PortId;
use netsim::stats::DropReason;

/// The ETH protocol module.
pub struct EthModule {
    me: ModuleRef,
    /// Ports this module is bound to (routers: one; a plain layer-2 switch
    /// models all its ports as one ETH module with `[phy => phy]` switching).
    ports: Vec<PortId>,
    /// Module kinds that may sit above this ETH module.
    up_kinds: Vec<ModuleKind>,
    /// Can this module switch frames between its physical pipes?
    phy_switching: bool,
    pipes: Vec<(conman_core::ids::PipeId, ModuleRef)>,
    switch_rules: Vec<String>,
}

impl EthModule {
    /// An ETH module on a router or host, bound to a single port.
    pub fn new(me: ModuleRef, port: PortId, up_kinds: Vec<ModuleKind>) -> Self {
        EthModule {
            me,
            ports: vec![port],
            up_kinds,
            phy_switching: false,
            pipes: Vec::new(),
            switch_rules: Vec::new(),
        }
    }

    /// An ETH module modelling a plain layer-2 switch: all ports, with
    /// `[phy => phy]` switching and nothing above it.
    pub fn layer2_switch(me: ModuleRef, ports: Vec<PortId>) -> Self {
        EthModule {
            me,
            ports,
            up_kinds: Vec::new(),
            phy_switching: true,
            pipes: Vec::new(),
            switch_rules: Vec::new(),
        }
    }

    /// The primary port of this module.
    pub fn port(&self) -> PortId {
        self.ports[0]
    }
}

impl ProtocolModule for EthModule {
    fn reference(&self) -> ModuleRef {
        self.me.clone()
    }

    fn descriptor(&self) -> ModuleAbstraction {
        let mut a = ModuleAbstraction::empty(self.me.clone());
        a.up_connectable = self.up_kinds.clone();
        a.peerable = vec![ModuleKind::Eth];
        a.switch.kinds = vec![SwitchKind::PhyUp, SwitchKind::UpPhy];
        if self.phy_switching {
            a.switch.kinds.push(SwitchKind::PhyPhy);
        }
        if self.up_kinds.is_empty() && !self.phy_switching {
            a.switch.kinds.clear();
        }
        for p in &self.ports {
            a.physical_pipes.push(PhysicalPipeInfo {
                port: *p,
                link: None,
                broadcast: false,
            });
        }
        a.perf_reporting = vec!["frames received and transmitted per physical pipe".to_string()];
        a
    }

    fn actual(&self, _ctx: &ModuleCtx) -> ModuleActual {
        ModuleActual {
            pipes: self.pipes.iter().map(|(p, _)| *p).collect(),
            switch_rules: self.switch_rules.clone(),
            ..Default::default()
        }
    }

    fn counters(&self, ctx: &ModuleCtx) -> CounterSnapshot {
        // "Frames received and transmitted per physical pipe": the device's
        // per-port counters, one pipe label per bound port.
        let mut snap = CounterSnapshot::empty(self.me.clone());
        for p in &self.ports {
            let c = ctx.stats.ports.get(&p.0).copied().unwrap_or_default();
            let pipe = PipeCounters {
                rx_packets: c.rx_packets,
                tx_packets: c.tx_packets,
                drops: c.drops,
            };
            snap.totals.absorb(&pipe);
            snap.pipes.insert(format!("phy:{p}"), pipe);
        }
        for reason in [
            DropReason::PortDown,
            DropReason::NotForUs,
            DropReason::Malformed,
        ] {
            if let Some(n) = ctx.stats.drops.get(&reason) {
                snap.drop_breakdown.insert(format!("{reason:?}"), *n);
            }
        }
        snap
    }

    fn create_pipe(
        &mut self,
        ctx: &mut ModuleCtx,
        spec: &PipeSpec,
    ) -> Result<ModuleReaction, ModuleError> {
        // The ETH module is always the lower end of an up-down pipe.  It
        // publishes the underlying port so the modules above can translate
        // abstract pipes into concrete interfaces.
        if spec.lower == self.me {
            ctx.set_pipe_attr(spec.pipe, "port", self.port().0.to_string());
            self.pipes.push((spec.pipe, spec.upper.clone()));
        } else {
            self.pipes.push((spec.pipe, spec.lower.clone()));
        }
        Ok(ModuleReaction::none())
    }

    fn create_switch(
        &mut self,
        _ctx: &mut ModuleCtx,
        spec: &SwitchSpec,
    ) -> Result<ModuleReaction, ModuleError> {
        // Switching between an up pipe and a physical pipe needs no extra
        // data-plane state in the simulator (transmission on the port is
        // already wired up); record it for showActual.
        self.switch_rules
            .push(format!("{} => {}", spec.in_pipe, spec.out_pipe));
        Ok(ModuleReaction::none())
    }

    fn delete(
        &mut self,
        _ctx: &mut ModuleCtx,
        component: &ComponentRef,
    ) -> Result<ModuleReaction, ModuleError> {
        // Forget the pipe / rule so `showActual` reflects a clean teardown
        // (transactional rollback asserts on this).
        match component {
            ComponentRef::Pipe(pipe) => {
                self.pipes.retain(|(p, _)| p != pipe);
                let label = format!("{pipe} ");
                self.switch_rules
                    .retain(|r| !r.starts_with(&label) && !r.ends_with(&pipe.to_string()));
            }
            ComponentRef::SwitchRule(module, in_pipe, out_pipe) if *module == self.me => {
                let rendered = format!("{in_pipe} => {out_pipe}");
                self.switch_rules.retain(|r| *r != rendered);
            }
            _ => {}
        }
        Ok(ModuleReaction::none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conman_core::ids::{ModuleId, PipeId};
    use netsim::config::DeviceConfig;
    use netsim::device::DeviceId;
    use std::collections::BTreeMap;

    fn ctx<'a>(
        config: &'a mut DeviceConfig,
        stats: &'a netsim::stats::DeviceStats,
        blackboard: &'a mut BTreeMap<String, String>,
    ) -> ModuleCtx<'a> {
        ModuleCtx {
            device: DeviceId::from_raw(1),
            config,
            ports: &[],
            stats,
            blackboard,
        }
    }

    #[test]
    fn publishes_port_on_pipe_creation() {
        let me = ModuleRef::new(ModuleKind::Eth, ModuleId(1), DeviceId::from_raw(1));
        let ip = ModuleRef::new(ModuleKind::Ip, ModuleId(2), DeviceId::from_raw(1));
        let mut m = EthModule::new(me.clone(), PortId(2), vec![ModuleKind::Ip]);
        let mut config = DeviceConfig::new();
        let stats = netsim::stats::DeviceStats::default();
        let mut bb = BTreeMap::new();
        let mut c = ctx(&mut config, &stats, &mut bb);
        let spec = PipeSpec {
            pipe: PipeId(3),
            upper: ip,
            lower: me,
            peer_upper: None,
            peer_lower: None,
            tradeoffs: vec![],
            initiate: false,
            resolved: BTreeMap::new(),
        };
        m.create_pipe(&mut c, &spec).unwrap();
        assert_eq!(bb.get("pipe.3.port").unwrap(), "2");
    }

    #[test]
    fn descriptor_shapes() {
        let me = ModuleRef::new(ModuleKind::Eth, ModuleId(1), DeviceId::from_raw(1));
        let router_eth = EthModule::new(
            me.clone(),
            PortId(0),
            vec![ModuleKind::Ip, ModuleKind::Mpls],
        );
        let d = router_eth.descriptor();
        assert!(d.can_switch(SwitchKind::PhyUp));
        assert!(!d.can_switch(SwitchKind::PhyPhy));
        assert!(d.can_connect_up(&ModuleKind::Mpls));

        let sw = EthModule::layer2_switch(me, vec![PortId(0), PortId(1)]);
        let d = sw.descriptor();
        assert!(d.can_switch(SwitchKind::PhyPhy));
        assert_eq!(d.physical_pipes.len(), 2);
    }
}
