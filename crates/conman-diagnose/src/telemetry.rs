//! Periodic counter-snapshot collection over the management channel.

use conman_core::abstraction::CounterSnapshot;
use conman_core::ids::ModuleRef;
use conman_core::runtime::ManagedNetwork;
use mgmt_channel::{ManagementChannel, TelemetrySchedule};
use netsim::clock::{SimDuration, SimTime};
use netsim::device::DeviceId;
use std::collections::BTreeMap;

/// One round of counter snapshots: every responding device's modules at one
/// instant of simulated time.
#[derive(Debug, Clone)]
pub struct TelemetryRound {
    /// Simulated time the round was taken.
    pub at: SimTime,
    /// Snapshots per responding device.  Devices that were polled but did
    /// not answer are simply absent — which is itself evidence.
    pub snapshots: BTreeMap<DeviceId, Vec<CounterSnapshot>>,
}

impl TelemetryRound {
    /// The snapshot of one module in this round.
    pub fn module(&self, module: &ModuleRef) -> Option<&CounterSnapshot> {
        self.snapshots
            .get(&module.device)?
            .iter()
            .find(|s| s.module == *module)
    }
}

/// Collects counter snapshots from a set of devices on a periodic schedule
/// of simulated time, keeping a bounded history of rounds.
#[derive(Debug)]
pub struct TelemetryCollector {
    schedule: TelemetrySchedule,
    devices: Vec<DeviceId>,
    /// Collected rounds, oldest first.
    pub rounds: Vec<TelemetryRound>,
    max_rounds: usize,
}

impl TelemetryCollector {
    /// A collector polling `devices` every `period` of simulated time.
    pub fn new(devices: Vec<DeviceId>, period: SimDuration) -> Self {
        TelemetryCollector {
            schedule: TelemetrySchedule::new(period),
            devices,
            rounds: Vec::new(),
            max_rounds: 64,
        }
    }

    /// Cap the kept history (older rounds are discarded).
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds.max(2);
        self
    }

    /// The devices this collector polls.
    pub fn devices(&self) -> &[DeviceId] {
        &self.devices
    }

    /// Sample now regardless of the schedule.
    pub fn sample<C: ManagementChannel>(&mut self, mn: &mut ManagedNetwork<C>) -> &TelemetryRound {
        let at = mn.net.now();
        let snapshots = mn.poll_counters(&self.devices);
        self.rounds.push(TelemetryRound { at, snapshots });
        if self.rounds.len() > self.max_rounds {
            let excess = self.rounds.len() - self.max_rounds;
            self.rounds.drain(..excess);
        }
        self.rounds.last().expect("just pushed")
    }

    /// Sample iff a round is due at the network's current simulated time.
    /// Returns whether a sample was taken (a backlog of missed rounds
    /// collapses into one sample — counters are cumulative).
    pub fn tick<C: ManagementChannel>(&mut self, mn: &mut ManagedNetwork<C>) -> bool {
        if self.schedule.due_rounds(mn.net.now()) == 0 {
            return false;
        }
        self.sample(mn);
        true
    }

    /// The most recent round.
    pub fn latest(&self) -> Option<&TelemetryRound> {
        self.rounds.last()
    }

    /// The round before the most recent one.
    pub fn previous(&self) -> Option<&TelemetryRound> {
        self.rounds.len().checked_sub(2).map(|i| &self.rounds[i])
    }
}
