//! Counter-based fault localisation along a configured module path.

use crate::report::{FaultReport, Suspect, SuspectTarget};
use crate::telemetry::TelemetryRound;
use conman_core::abstraction::CounterSnapshot;
use conman_core::ids::ModuleRef;
use conman_core::nm::ModulePath;
use conman_core::runtime::ManagedNetwork;
use mgmt_channel::ManagementChannel;
use netsim::device::DeviceId;
use std::collections::BTreeMap;

/// Localises faults on a configured path by comparing per-module counter
/// snapshots taken before and after a burst of end-to-end probes.
///
/// The algorithm is exactly the paper's sketch (§III-C): walk the pipe's
/// module path, compare per-module counters, and find where the traffic
/// disappears.  The NM never interprets a protocol field — only generic
/// rx/tx/drop counters and drop-reason names the modules chose to expose.
///
/// ## Known limitation: counter sharing
///
/// Several modules (IP, MPLS) derive their snapshots from device-level
/// tallies, and ETH pipes count all data-plane traffic on their port, so
/// the counter deltas assume the probe burst dominates the sampling window.
/// Heavy unrelated traffic through the same devices — a second managed
/// goal, background flows — can mask a frontier or misattribute drops
/// between same-kind modules on one device.  Setting [`Diagnoser::flow_tag`]
/// (or using [`Diagnoser::for_goal`]) runs the burst inside a per-goal
/// flow-attribution window, so the device-level tallies stay separable per
/// goal (`netsim::stats::FlowCounters`); feeding those per-goal deltas into
/// the frontier walk itself is the remaining step — until then, diagnose
/// during a quiet window or with enough probes to dominate it.
#[derive(Debug, Clone, Copy)]
pub struct Diagnoser {
    /// End-to-end probes sent per diagnosis pass (values below 1 are
    /// treated as 1 — zero probes could only ever produce a vacuous
    /// "healthy" verdict).
    pub probes: u32,
    /// Flow tag (the owning goal's id) the probe burst runs under.  When
    /// set, the burst is wrapped in a `netsim` flow-attribution window so
    /// its per-device counters stay separable from other goals' traffic.
    pub flow_tag: Option<u64>,
}

impl Default for Diagnoser {
    fn default() -> Self {
        Diagnoser {
            probes: 3,
            flow_tag: None,
        }
    }
}

impl Diagnoser {
    /// A diagnoser sending `probes` probes per pass.
    pub fn new(probes: u32) -> Self {
        assert!(probes > 0, "at least one probe is required");
        Diagnoser {
            probes,
            ..Default::default()
        }
    }

    /// Tag this diagnoser's probe bursts with the owning goal's id.
    pub fn for_goal(mut self, goal: conman_core::nm::GoalId) -> Self {
        self.flow_tag = Some(goal.0);
        self
    }

    /// Run one diagnosis pass: snapshot counters along `path`, drive
    /// `probe` (which must inject one end-to-end datagram for the goal and
    /// report delivery), snapshot again, and localise any loss.
    pub fn diagnose<C, P>(
        &self,
        mn: &mut ManagedNetwork<C>,
        path: &ModulePath,
        probe: &mut P,
    ) -> FaultReport
    where
        C: ManagementChannel,
        P: FnMut(&mut ManagedNetwork<C>) -> bool,
    {
        // Clamp: `probes` is a public field, and zero probes would make
        // `delivered == probes` vacuously true for a dead path.
        let probes = self.probes.max(1);
        let devices = path.devices();
        let before = TelemetryRound {
            at: mn.net.now(),
            snapshots: mn.poll_counters(&devices),
        };
        if let Some(tag) = self.flow_tag {
            mn.net.begin_flow_window(tag);
        }
        let mut delivered = 0u32;
        for _ in 0..probes {
            if probe(mn) {
                delivered += 1;
            }
        }
        if self.flow_tag.is_some() {
            mn.net.end_flow_window();
        }
        let after = TelemetryRound {
            at: mn.net.now(),
            snapshots: mn.poll_counters(&devices),
        };
        if delivered == probes {
            return FaultReport::healthy(probes);
        }
        self.localise(mn, path, &devices, &before, &after, delivered)
    }

    fn localise<C: ManagementChannel>(
        &self,
        mn: &ManagedNetwork<C>,
        path: &ModulePath,
        devices: &[DeviceId],
        before: &TelemetryRound,
        after: &TelemetryRound,
        delivered: u32,
    ) -> FaultReport {
        let mut suspects = Vec::new();

        // Devices that did not answer the telemetry poll at all.
        let unresponsive: Vec<DeviceId> = devices
            .iter()
            .copied()
            .filter(|d| !after.snapshots.contains_key(d))
            .collect();
        for d in &unresponsive {
            suspects.push(Suspect {
                target: SuspectTarget::Device(*d),
                confidence_pct: 95,
                evidence: vec![format!(
                    "device {} did not answer the telemetry poll",
                    mn.nm.device_alias(*d)
                )],
            });
        }

        // Per-module counter deltas for the devices that did answer.
        let deltas = module_deltas(before, after);
        let need = u64::from(self.probes.max(1));

        // Per-device ingress/egress counters, read off the path's first and
        // last step on each device (the modules facing the previous and next
        // hop).
        let entries = device_entry_exit(path, devices);
        let advanced = |m: Option<&ModuleRef>, rx: bool| -> Option<u64> {
            let module = m?;
            let d = deltas.get(module)?;
            Some(if rx {
                d.totals.rx_packets
            } else {
                d.totals.tx_packets
            })
        };

        // Walk the device chain looking for the loss frontier.
        for (i, device) in devices.iter().enumerate() {
            let (entry, exit) = &entries[i];
            let responded = after.snapshots.contains_key(device);
            let rx_in = advanced(entry.as_ref(), true);
            let tx_out = advanced(exit.as_ref(), false);

            // Inter-device check: we forwarded towards the next device —
            // did its ingress see anything?
            if let (Some(tx), true) = (tx_out, i + 1 < devices.len()) {
                let next = devices[i + 1];
                let (next_entry, _) = &entries[i + 1];
                let next_rx = advanced(next_entry.as_ref(), true);
                // Total blackhole (nothing arrived) is near-certain; partial
                // loss (fewer frames than were sent) still points at the
                // link, with lower confidence.
                if let (true, true, Some(rx)) =
                    (tx >= need, after.snapshots.contains_key(&next), next_rx)
                {
                    if rx < need {
                        suspects.push(Suspect {
                            target: SuspectTarget::Link {
                                a: *device,
                                b: next,
                                link: mn.net.link_between(*device, next),
                            },
                            confidence_pct: if rx == 0 { 90 } else { 70 },
                            evidence: vec![format!(
                                "{} transmitted {} frame(s) towards {} but its ingress pipe saw only {}",
                                mn.nm.device_alias(*device),
                                tx,
                                mn.nm.device_alias(next),
                                rx,
                            )],
                        });
                    }
                }
            }

            // Intra-device check: traffic entered but never left — blame the
            // module whose drop counters moved.
            if !responded {
                continue;
            }
            if let (Some(rx), Some(tx)) = (rx_in, tx_out) {
                if rx >= need && tx < need {
                    if let Some((module, reasons)) = biggest_dropper(path, *device, &deltas) {
                        suspects.push(Suspect {
                            target: SuspectTarget::Module(module.clone()),
                            confidence_pct: 85,
                            evidence: vec![format!(
                                "{} entered {} ({} frame(s) in, {} out); drop counters moved: {}",
                                mn.nm.device_alias(*device),
                                module,
                                rx,
                                tx,
                                reasons,
                            )],
                        });
                    } else {
                        suspects.push(Suspect {
                            target: SuspectTarget::Device(*device),
                            confidence_pct: 60,
                            evidence: vec![format!(
                                "traffic entered {} ({} frame(s)) but never left ({}), with no attributable drop counter",
                                mn.nm.device_alias(*device),
                                rx,
                                tx,
                            )],
                        });
                    }
                }
            }
        }

        if suspects.is_empty() {
            suspects.push(Suspect {
                target: SuspectTarget::Unlocated,
                confidence_pct: 30,
                evidence: vec![
                    "every managed module forwarded the probes; the loss is outside the managed path"
                        .to_string(),
                ],
            });
        }
        suspects.sort_by_key(|s| std::cmp::Reverse(s.confidence_pct));

        FaultReport {
            probes_sent: self.probes.max(1),
            probes_delivered: delivered,
            healthy: false,
            suspects,
            unresponsive,
        }
    }
}

/// Counter deltas (`after - before`) for every module present in *both*
/// rounds.  A module that missed the baseline poll contributes no delta at
/// all — treating its lifetime counters as a probe-window delta would
/// manufacture spurious suspects out of historical drops.
fn module_deltas(
    before: &TelemetryRound,
    after: &TelemetryRound,
) -> BTreeMap<ModuleRef, CounterSnapshot> {
    let mut out = BTreeMap::new();
    for snapshots in after.snapshots.values() {
        for snap in snapshots {
            if let Some(earlier) = before.module(&snap.module) {
                out.insert(snap.module.clone(), snap.delta_since(earlier));
            }
        }
    }
    out
}

/// For each device on the path, the modules its first and last step touch —
/// the ingress and egress ends the frontier walk compares.
fn device_entry_exit(
    path: &ModulePath,
    devices: &[DeviceId],
) -> Vec<(Option<ModuleRef>, Option<ModuleRef>)> {
    devices
        .iter()
        .map(|d| {
            let entry = path
                .steps
                .iter()
                .find(|s| s.module.device == *d)
                .map(|s| s.module.clone());
            let exit = path
                .steps
                .iter()
                .rev()
                .find(|s| s.module.device == *d)
                .map(|s| s.module.clone());
            (entry, exit)
        })
        .collect()
}

/// The module on `device` (anywhere on the path) whose drop counters grew
/// the most, with a rendered reason list.
fn biggest_dropper<'a>(
    path: &'a ModulePath,
    device: DeviceId,
    deltas: &BTreeMap<ModuleRef, CounterSnapshot>,
) -> Option<(&'a ModuleRef, String)> {
    let mut best: Option<(&ModuleRef, u64, String)> = None;
    for step in &path.steps {
        if step.module.device != device {
            continue;
        }
        let Some(delta) = deltas.get(&step.module) else {
            continue;
        };
        let dropped: u64 = delta.drop_breakdown.values().sum();
        if dropped == 0 {
            continue;
        }
        let reasons = delta
            .drop_breakdown
            .iter()
            .filter(|(_, n)| **n > 0)
            .map(|(r, n)| format!("{r} +{n}"))
            .collect::<Vec<_>>()
            .join(", ");
        if best.as_ref().is_none_or(|(_, d, _)| dropped > *d) {
            best = Some((&step.module, dropped, reasons));
        }
    }
    best.map(|(m, _, r)| (m, r))
}
