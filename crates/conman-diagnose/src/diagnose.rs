//! Fault localisation along a configured module path from **per-goal**
//! counter deltas.
//!
//! The frontier walk follows the paper's sketch (§III-C): compare counters
//! along the configured path before and after a burst of end-to-end probes
//! and find where the traffic disappears.  What changed with the autonomic
//! loop is *which* counters drive the walk: instead of device-total module
//! tallies — which a second goal's traffic through the same devices
//! pollutes — the walk runs on window-based [`FlowCounters`] deltas
//! attributed to the diagnosed goal's flow tag (`PollFlows` over the
//! management channel).  Device totals from the module snapshots are still
//! polled, but only to *refine* a blamed device down to the module whose
//! drop-reason counters moved (healthy background traffic drops nothing, so
//! drop deltas stay attributable even under load).

use crate::report::{FaultReport, Suspect, SuspectTarget};
use crate::telemetry::TelemetryRound;
use conman_core::abstraction::CounterSnapshot;
use conman_core::ids::ModuleRef;
use conman_core::nm::ModulePath;
use conman_core::runtime::ManagedNetwork;
use conman_obs::TraceKind;
use mgmt_channel::ManagementChannel;
use netsim::device::DeviceId;
use netsim::stats::FlowCounters;
use std::collections::BTreeMap;

/// Localises faults on a configured path by comparing per-goal flow deltas
/// taken before and after a burst of end-to-end probes.
///
/// The probe burst runs inside a `netsim` flow-attribution window tagged
/// with [`Diagnoser::flow_tag`] (the owning goal's id; tag 0 when unset),
/// and the walk compares each path device's per-tag
/// `originated`/`forwarded`/`delivered`/`drops` deltas — so the frontier is
/// found correctly even while dozens of other goals push traffic through
/// the same devices, as long as that background traffic runs *outside* the
/// goal's window (which [`Diagnoser::diagnose_with_background`] arranges
/// when the control loop diagnoses under load).
#[derive(Debug, Clone, Copy)]
pub struct Diagnoser {
    /// End-to-end probes sent per diagnosis pass (values below 1 are
    /// treated as 1 — zero probes could only ever produce a vacuous
    /// "healthy" verdict).
    pub probes: u32,
    /// Flow tag (the owning goal's id) the probe burst runs under.  The
    /// burst is wrapped in a `netsim` flow-attribution window so its
    /// per-device counters stay separable from other goals' traffic; when
    /// unset, tag 0 (never a goal id — goal ids start at 1) is used.
    pub flow_tag: Option<u64>,
}

impl Default for Diagnoser {
    fn default() -> Self {
        Diagnoser {
            probes: 3,
            flow_tag: None,
        }
    }
}

impl Diagnoser {
    /// A diagnoser sending `probes` probes per pass.
    pub fn new(probes: u32) -> Self {
        assert!(probes > 0, "at least one probe is required");
        Diagnoser {
            probes,
            ..Default::default()
        }
    }

    /// Tag this diagnoser's probe bursts with the owning goal's id.
    pub fn for_goal(mut self, goal: conman_core::nm::GoalId) -> Self {
        self.flow_tag = Some(goal.0);
        self
    }

    /// Run one diagnosis pass: snapshot per-goal flow counters (and module
    /// counters, for drop-reason refinement) along `path`, drive `probe`
    /// (which must inject one end-to-end datagram for the goal and report
    /// delivery), snapshot again, and localise any loss from the per-goal
    /// deltas.
    pub fn diagnose<C, P>(
        &self,
        mn: &mut ManagedNetwork<C>,
        path: &ModulePath,
        probe: &mut P,
    ) -> FaultReport
    where
        C: ManagementChannel,
        P: FnMut(&mut ManagedNetwork<C>) -> bool,
    {
        self.diagnose_with_background(mn, path, probe, &mut |_| {})
    }

    /// [`Self::diagnose`] under concurrent load: `background` is invoked
    /// between probes to inject the *other* goals' traffic (each burst in
    /// its own flow window), so the measurement window contains realistic
    /// cross-traffic and the per-goal attribution — not probe dominance —
    /// is what keeps the frontier walk correct.  This is how the autonomic
    /// control loop diagnoses one degraded goal while the rest of the fleet
    /// keeps carrying traffic.
    pub fn diagnose_with_background<C, P, B>(
        &self,
        mn: &mut ManagedNetwork<C>,
        path: &ModulePath,
        probe: &mut P,
        background: &mut B,
    ) -> FaultReport
    where
        C: ManagementChannel,
        P: FnMut(&mut ManagedNetwork<C>) -> bool,
        B: FnMut(&mut ManagedNetwork<C>),
    {
        // Clamp: `probes` is a public field, and zero probes would make
        // `delivered == probes` vacuously true for a dead path.
        let probes = self.probes.max(1);
        let tag = self.flow_tag.unwrap_or(0);
        let devices = path.devices();
        let flows_before = mn.poll_flows(&devices, &[tag]);
        let mods_before = TelemetryRound {
            at: mn.net.now(),
            snapshots: mn.poll_counters(&devices),
        };
        let mut delivered = 0u32;
        for _ in 0..probes {
            // The goal's own probe runs inside its window; the background
            // traffic runs outside it (in other goals' windows), so the
            // per-tag deltas stay attributable.
            mn.net.begin_flow_window(tag);
            if probe(mn) {
                delivered += 1;
            }
            mn.net.end_flow_window();
            background(mn);
        }
        let flows_after = mn.poll_flows(&devices, &[tag]);
        let mods_after = TelemetryRound {
            at: mn.net.now(),
            snapshots: mn.poll_counters(&devices),
        };
        if delivered == probes {
            return FaultReport::healthy(probes);
        }
        self.localise(
            mn,
            path,
            &devices,
            tag,
            &flows_before,
            &flows_after,
            &mods_before,
            &mods_after,
            delivered,
        )
    }

    /// The frontier walk over per-goal flow deltas, refined per device by
    /// module drop-reason deltas.
    #[allow(clippy::too_many_arguments)]
    fn localise<C: ManagementChannel>(
        &self,
        mn: &ManagedNetwork<C>,
        path: &ModulePath,
        devices: &[DeviceId],
        tag: u64,
        flows_before: &BTreeMap<DeviceId, BTreeMap<u64, FlowCounters>>,
        flows_after: &BTreeMap<DeviceId, BTreeMap<u64, FlowCounters>>,
        mods_before: &TelemetryRound,
        mods_after: &TelemetryRound,
        delivered: u32,
    ) -> FaultReport {
        let mut suspects = Vec::new();

        // Devices that did not answer the flow poll at all.
        let unresponsive: Vec<DeviceId> = devices
            .iter()
            .copied()
            .filter(|d| !flows_after.contains_key(d))
            .collect();
        for d in &unresponsive {
            suspects.push(Suspect {
                target: SuspectTarget::Device(*d),
                confidence_pct: 95,
                evidence: vec![format!(
                    "device {} did not answer the telemetry poll",
                    mn.nm.device_alias(*d)
                )],
            });
        }

        let need = u64::from(self.probes.max(1));
        let mod_deltas = module_deltas(mods_before, mods_after);
        // Per-device per-goal deltas across the probe burst; a device that
        // missed the baseline poll contributes no delta at all.
        let delta = |d: DeviceId| -> Option<FlowCounters> {
            let before = flows_before.get(&d)?.get(&tag).copied().unwrap_or_default();
            let after = flows_after.get(&d)?.get(&tag).copied().unwrap_or_default();
            Some(FlowCounters {
                originated: after.originated.saturating_sub(before.originated),
                forwarded: after.forwarded.saturating_sub(before.forwarded),
                local_delivered: after.local_delivered.saturating_sub(before.local_delivered),
                drops: after.drops.saturating_sub(before.drops),
            })
        };
        // Goal traffic that reached the device at all (it was forwarded on,
        // eaten, or locally delivered) vs. traffic the device moved onward.
        let arrived = |d: DeviceId| delta(d).map(|f| f.forwarded + f.drops + f.local_delivered);
        let moved_on = |d: DeviceId| delta(d).map(|f| f.forwarded);

        // Walk the device chain looking for the loss frontier.
        for (i, device) in devices.iter().enumerate() {
            // One FrontierHop trace event per inspected device, whether or
            // not it turns into a suspect — the journal alone must let a
            // post-mortem replay where the traffic disappeared.
            let f = delta(*device).unwrap_or_default();
            mn.recorder.event(
                mn.net.now().as_nanos(),
                TraceKind::FrontierHop {
                    goal: tag,
                    device: device.as_u64(),
                    arrived: f.forwarded + f.drops + f.local_delivered,
                    moved_on: f.forwarded,
                    dropped: f.drops,
                },
            );
            // Inter-device check: this device forwarded the goal's frames
            // towards the next device — did the goal's slice of the next
            // device's counters see them?
            if let (Some(tx), true) = (moved_on(*device), i + 1 < devices.len()) {
                let next = devices[i + 1];
                if let (true, true, Some(rx)) =
                    (tx >= need, flows_after.contains_key(&next), arrived(next))
                {
                    // Total blackhole (nothing arrived) is near-certain;
                    // partial loss still points at the link, with lower
                    // confidence.
                    if rx < need {
                        suspects.push(Suspect {
                            target: SuspectTarget::Link {
                                a: *device,
                                b: next,
                                link: mn.net.link_between(*device, next),
                            },
                            confidence_pct: if rx == 0 { 90 } else { 70 },
                            evidence: vec![format!(
                                "{} forwarded {} of the goal's frame(s) towards {} but only {} arrived there",
                                mn.nm.device_alias(*device),
                                tx,
                                mn.nm.device_alias(next),
                                rx,
                            )],
                        });
                    }
                }
            }

            // Intra-device check: the goal's traffic entered but never left
            // — blame the path module whose drop counters moved.
            if !flows_after.contains_key(device) {
                continue;
            }
            if let (Some(rx), Some(tx)) = (arrived(*device), moved_on(*device)) {
                if rx >= need && tx < need {
                    if let Some((module, reasons)) = biggest_dropper(path, *device, &mod_deltas) {
                        suspects.push(Suspect {
                            target: SuspectTarget::Module(module.clone()),
                            confidence_pct: 85,
                            evidence: vec![format!(
                                "the goal's traffic entered {} ({} frame(s) in, {} forwarded on) and {}'s drop counters moved: {}",
                                mn.nm.device_alias(*device),
                                rx,
                                tx,
                                module,
                                reasons,
                            )],
                        });
                    } else {
                        suspects.push(Suspect {
                            target: SuspectTarget::Device(*device),
                            confidence_pct: 60,
                            evidence: vec![format!(
                                "the goal's traffic entered {} ({} frame(s)) but never left ({}), with no attributable drop counter",
                                mn.nm.device_alias(*device),
                                rx,
                                tx,
                            )],
                        });
                    }
                }
            }
        }

        if suspects.is_empty() {
            suspects.push(Suspect {
                target: SuspectTarget::Unlocated,
                confidence_pct: 30,
                evidence: vec![
                    "every managed device forwarded the goal's probes; the loss is outside the managed path"
                        .to_string(),
                ],
            });
        }
        suspects.sort_by_key(|s| std::cmp::Reverse(s.confidence_pct));
        for s in &suspects {
            mn.recorder.event(
                mn.net.now().as_nanos(),
                TraceKind::Suspect {
                    goal: tag,
                    target: s.target.describe(),
                    confidence: format!("{}%", s.confidence_pct),
                },
            );
        }
        mn.recorder.inc("diagnose.passes", 1);
        mn.recorder
            .observe("diagnose.suspects", suspects.len() as f64);

        FaultReport {
            probes_sent: self.probes.max(1),
            probes_delivered: delivered,
            healthy: false,
            suspects,
            unresponsive,
        }
    }
}

/// Counter deltas (`after - before`) for every module present in *both*
/// rounds.  A module that missed the baseline poll contributes no delta at
/// all — treating its lifetime counters as a probe-window delta would
/// manufacture spurious suspects out of historical drops.
fn module_deltas(
    before: &TelemetryRound,
    after: &TelemetryRound,
) -> BTreeMap<ModuleRef, CounterSnapshot> {
    let mut out = BTreeMap::new();
    for snapshots in after.snapshots.values() {
        for snap in snapshots {
            if let Some(earlier) = before.module(&snap.module) {
                out.insert(snap.module.clone(), snap.delta_since(earlier));
            }
        }
    }
    out
}

/// The module on `device` (anywhere on the path) whose drop counters grew
/// the most, with a rendered reason list.  Healthy concurrent goals drop
/// nothing, so the drop-reason deltas stay attributable to the diagnosed
/// goal even though module counters are device totals.
fn biggest_dropper<'a>(
    path: &'a ModulePath,
    device: DeviceId,
    deltas: &BTreeMap<ModuleRef, CounterSnapshot>,
) -> Option<(&'a ModuleRef, String)> {
    let mut best: Option<(&ModuleRef, u64, String)> = None;
    for step in &path.steps {
        if step.module.device != device {
            continue;
        }
        let Some(delta) = deltas.get(&step.module) else {
            continue;
        };
        let dropped: u64 = delta.drop_breakdown.values().sum();
        if dropped == 0 {
            continue;
        }
        let reasons = delta
            .drop_breakdown
            .iter()
            .filter(|(_, n)| **n > 0)
            .map(|(r, n)| format!("{r} +{n}"))
            .collect::<Vec<_>>()
            .join(", ");
        if best.as_ref().is_none_or(|(_, d, _)| dropped > *d) {
            best = Some((&step.module, dropped, reasons));
        }
    }
    best.map(|(m, _, r)| (m, r))
}
