//! Diagnosis results: ranked suspects with evidence.

use conman_core::ids::ModuleRef;
use netsim::device::DeviceId;
use netsim::link::LinkId;
use serde::{Deserialize, Serialize};

/// What the diagnoser believes is at fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuspectTarget {
    /// A specific module (e.g. a GRE module rejecting every packet).
    Module(ModuleRef),
    /// The physical pipe between two adjacent devices on the path.
    Link {
        /// Device on the near side (in path order).
        a: DeviceId,
        /// Device on the far side.
        b: DeviceId,
        /// The concrete simulator link, when the NM's topology map names
        /// one.
        link: Option<LinkId>,
    },
    /// A whole device (crashed or silently dropping everything).
    Device(DeviceId),
    /// The loss could not be pinned inside the managed path (e.g. it happens
    /// beyond the egress, in the unmanaged customer site).
    Unlocated,
}

impl SuspectTarget {
    /// A compact human-readable rendering for trace events and logs.
    pub fn describe(&self) -> String {
        match self {
            SuspectTarget::Module(m) => format!("module {m}"),
            SuspectTarget::Link { a, b, .. } => format!("link {a}-{b}"),
            SuspectTarget::Device(d) => format!("device {d}"),
            SuspectTarget::Unlocated => "unlocated".to_string(),
        }
    }
}

/// One ranked fault hypothesis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Suspect {
    /// What is suspected.
    pub target: SuspectTarget,
    /// Confidence, 0–100.  Purely ordinal: used to rank hypotheses, not as
    /// a calibrated probability.
    pub confidence_pct: u8,
    /// Human-readable counter evidence backing the hypothesis.
    pub evidence: Vec<String>,
}

/// The outcome of one diagnosis pass over a configured path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultReport {
    /// End-to-end probes sent during the pass.
    pub probes_sent: u32,
    /// Probes that arrived.
    pub probes_delivered: u32,
    /// Did the path carry every probe (no fault observed)?
    pub healthy: bool,
    /// Ranked fault hypotheses, most confident first.  Empty iff `healthy`
    /// or the diagnoser had nothing to go on.
    pub suspects: Vec<Suspect>,
    /// Devices on the path that did not answer the telemetry poll.
    pub unresponsive: Vec<DeviceId>,
}

impl FaultReport {
    /// A healthy report (all probes delivered).
    pub fn healthy(probes: u32) -> Self {
        FaultReport {
            probes_sent: probes,
            probes_delivered: probes,
            healthy: true,
            suspects: Vec::new(),
            unresponsive: Vec::new(),
        }
    }

    /// The most confident suspect, if any.
    pub fn prime_suspect(&self) -> Option<&Suspect> {
        self.suspects.first()
    }

    /// Does any suspect blame the given module?
    pub fn blames_module(&self, module: &ModuleRef) -> bool {
        self.suspects
            .iter()
            .any(|s| matches!(&s.target, SuspectTarget::Module(m) if m == module))
    }

    /// Does any suspect blame the link between these two devices (either
    /// direction)?
    pub fn blames_link(&self, x: DeviceId, y: DeviceId) -> bool {
        self.suspects.iter().any(|s| {
            matches!(&s.target, SuspectTarget::Link { a, b, .. }
                if (*a == x && *b == y) || (*a == y && *b == x))
        })
    }

    /// Does any suspect blame the given device as a whole?
    pub fn blames_device(&self, device: DeviceId) -> bool {
        self.suspects
            .iter()
            .any(|s| matches!(&s.target, SuspectTarget::Device(d) if *d == device))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conman_core::ids::{ModuleId, ModuleKind};

    #[test]
    fn report_queries() {
        let d1 = DeviceId::from_raw(1);
        let d2 = DeviceId::from_raw(2);
        let m = ModuleRef::new(ModuleKind::Gre, ModuleId(5), d2);
        let report = FaultReport {
            probes_sent: 4,
            probes_delivered: 0,
            healthy: false,
            suspects: vec![
                Suspect {
                    target: SuspectTarget::Module(m.clone()),
                    confidence_pct: 85,
                    evidence: vec!["TunnelMismatch +4".into()],
                },
                Suspect {
                    target: SuspectTarget::Link {
                        a: d1,
                        b: d2,
                        link: None,
                    },
                    confidence_pct: 40,
                    evidence: vec![],
                },
            ],
            unresponsive: vec![],
        };
        assert!(report.blames_module(&m));
        assert!(
            report.blames_link(d2, d1),
            "link blame is direction-agnostic"
        );
        assert!(!report.blames_device(d1));
        assert_eq!(report.prime_suspect().unwrap().confidence_pct, 85);
        assert!(FaultReport::healthy(3).suspects.is_empty());
    }
}
