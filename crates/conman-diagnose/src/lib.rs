//! # conman-diagnose — closed-loop diagnosis and self-healing
//!
//! CONMan's §III-C argues that the module abstraction is enough not only to
//! *configure* a network but to *diagnose* it: the NM knows the exact module
//! path it configured for a goal, every module reports generic per-pipe
//! counters, and comparing counter deltas along the path localises where
//! traffic is being lost without the NM understanding a single protocol
//! field.  This crate turns that sketch into a subsystem:
//!
//! * [`telemetry`] — periodic counter-snapshot collection over the
//!   management channel (either variant), driven by the deterministic clock;
//! * [`report`] — the [`FaultReport`] produced by diagnosis: ranked
//!   suspects (module, link or device) with evidence and confidence;
//! * [`diagnose`] — the [`Diagnoser`]: probe the goal end to end, pull
//!   snapshots along the configured [`ModulePath`](conman_core::ModulePath),
//!   compute deltas and localise the fault;
//! * [`heal`] — the [`Healer`], a client of the NM's reconciler: mark the
//!   goal degraded with the suspects excluded, tear the failed
//!   configuration down through the transactional withdraw path, execute
//!   candidate re-plans as two-phase transactions (e.g. the GRE-IP
//!   fallback when the MPLS core dies) and verify the repair with
//!   end-to-end probes;
//! * [`autonomic`] — [`AutonomicClient`], which plugs the Diagnoser/Healer
//!   pair into `conman-core`'s event-driven
//!   [`ControlLoop`](conman_core::runtime::ControlLoop) as its diagnosis
//!   stage: localisation runs on per-goal flow deltas *while the other
//!   goals keep pushing traffic*, and the loop repairs everything that
//!   needs work in one batched reconcile pass per tick.
//!
//! The companion fault-injection machinery ([`netsim::fault`]) produces the
//! failures this crate hunts: link cuts and flaps, loss spikes, device
//! crashes and module misconfigurations, all on deterministic, replayable
//! timelines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autonomic;
pub mod diagnose;
pub mod heal;
pub mod report;
pub mod telemetry;

pub use autonomic::AutonomicClient;
pub use diagnose::Diagnoser;
pub use heal::{HealOutcome, Healer};
pub use report::{FaultReport, Suspect, SuspectTarget};
pub use telemetry::{TelemetryCollector, TelemetryRound};
