//! Self-healing reconfiguration as a reconciler client.
//!
//! The Healer no longer hand-rolls teardown or fire-and-forget execution:
//! a repair is "mark the goal `Degraded` with the diagnosed suspects
//! excluded, tear the failed configuration down through the transactional
//! withdraw path, and drive candidate re-plans through two-phase
//! transactions until end-to-end probes verify one" — the same machinery
//! `ManagedNetwork::reconcile` uses for every stored goal.

use crate::report::{FaultReport, SuspectTarget};
use conman_core::nm::{ConnectivityGoal, Exclusion, GoalStatus, ModulePath, PathFinderLimits};
use conman_core::runtime::ManagedNetwork;
use mgmt_channel::ManagementChannel;
use netsim::device::DeviceId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// What a healing attempt did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealOutcome {
    /// Candidate replacement paths that avoided every suspect.
    pub candidates: usize,
    /// The replacement path that was executed, if any.
    pub replacement: Option<ModulePath>,
    /// Technology label of the replacement (e.g. `GRE-IP` after an MPLS
    /// core failure).
    pub replacement_label: Option<String>,
    /// Delete primitives committed while tearing down failed paths (the
    /// initial teardown plus any unverified candidates).
    pub teardown_primitives: usize,
    /// Did an end-to-end probe confirm the repair?
    pub verified: bool,
    /// When every candidate failed verification, the original path is
    /// re-executed as a best-effort rollback (a partially impaired path
    /// beats no path at all); this records that the rollback ran.
    pub original_restored: bool,
}

impl HealOutcome {
    /// Was the network actually repaired?
    pub fn healed(&self) -> bool {
        self.replacement.is_some() && self.verified
    }
}

/// Re-plans and re-configures a goal around diagnosed faults.
#[derive(Debug, Clone)]
pub struct Healer {
    /// Traversal limits for the re-planning path search.  Long chains need
    /// a larger step budget and a much smaller path budget than the
    /// defaults, so healing stays fast at 50 routers.
    pub limits: PathFinderLimits,
    /// How many candidate paths to try before giving up.
    pub max_attempts: usize,
}

impl Default for Healer {
    fn default() -> Self {
        Healer {
            limits: PathFinderLimits::default(),
            max_attempts: 3,
        }
    }
}

impl Healer {
    /// A healer with explicit search limits.
    pub fn with_limits(limits: PathFinderLimits) -> Self {
        Healer {
            limits,
            ..Default::default()
        }
    }

    /// The exclusions the path search must respect, derived from the
    /// report: suspected modules directly, every module of a suspected
    /// device, and suspected *links* as traversal-level link exclusions.
    ///
    /// This is the **single** suspect→exclusion mapping in the system: the
    /// operator-driven [`Healer`] and the control loop's
    /// [`AutonomicClient`](crate::AutonomicClient) both call it, so the two
    /// repair paths cannot drift apart on how a diagnosis constrains the
    /// re-plan.
    pub fn exclusions<C: ManagementChannel>(
        mn: &ManagedNetwork<C>,
        report: &FaultReport,
    ) -> BTreeSet<Exclusion> {
        let mut excluded = BTreeSet::new();
        for suspect in &report.suspects {
            match &suspect.target {
                SuspectTarget::Module(m) => {
                    excluded.insert(Exclusion::Module(m.clone()));
                }
                SuspectTarget::Device(d) => {
                    if let Some(mods) = mn.nm.abstractions.get(d) {
                        excluded.extend(mods.iter().map(|a| Exclusion::Module(a.name.clone())));
                    }
                }
                SuspectTarget::Link { a, b, .. } => {
                    excluded.insert(Exclusion::link(*a, *b));
                }
                SuspectTarget::Unlocated => {}
            }
        }
        excluded
    }

    /// Attempt a repair of a goal configured outside the store: register it
    /// with the reconciler ([`ManagedNetwork::adopt_goal`]) and run
    /// [`Self::repair`] against the stored record.  Kept for the operator
    /// one-shot flow; the autonomic control loop calls [`Self::repair`] on
    /// its stored goals directly.
    pub fn heal<C, P>(
        &self,
        mn: &mut ManagedNetwork<C>,
        goal: &ConnectivityGoal,
        failed: &ModulePath,
        report: &FaultReport,
        probe: &mut P,
    ) -> HealOutcome
    where
        C: ManagementChannel,
        P: FnMut(&mut ManagedNetwork<C>) -> bool,
    {
        let id = mn.adopt_goal(goal, failed);
        self.repair(mn, id, report, probe)
    }

    /// Attempt a repair of a *stored* goal: mark it degraded with the
    /// report's suspects excluded, tear the failed configuration down
    /// through the transactional teardown path, then execute candidate
    /// re-plans as two-phase transactions best-first, verifying each with
    /// end-to-end probes until one works (or `max_attempts` is exhausted).
    ///
    /// The Healer is a *client* of the goal store and the reconciler — the
    /// same machinery `reconcile()` and the autonomic loop drive — not a
    /// separate entry point with its own execution path.
    pub fn repair<C, P>(
        &self,
        mn: &mut ManagedNetwork<C>,
        id: conman_core::nm::GoalId,
        report: &FaultReport,
        probe: &mut P,
    ) -> HealOutcome
    where
        C: ManagementChannel,
        P: FnMut(&mut ManagedNetwork<C>) -> bool,
    {
        let empty = HealOutcome {
            candidates: 0,
            replacement: None,
            replacement_label: None,
            teardown_primitives: 0,
            verified: false,
            original_restored: false,
        };
        let Some(rec) = mn.goals.get(id) else {
            return empty;
        };
        let goal = rec.desired.clone();
        let Some(failed) = rec.applied().map(|a| a.path.clone()) else {
            return empty;
        };
        let failed = &failed;
        let goal = &goal;
        let excluded = Self::exclusions(mn, report);
        mn.recorder.inc("heal.repairs", 1);
        mn.recorder
            .observe("heal.exclusions", excluded.len() as f64);
        mn.goals.mark_degraded(id, excluded.clone());

        // Suspected links are excluded inside the traversal itself (no
        // post-filtering of complete paths): every candidate the finder
        // bothers to enumerate is already routable around the blamed links.
        let mut candidates: Vec<ModulePath> = mn
            .nm
            .find_paths_avoiding(goal, &excluded, self.limits)
            .into_iter()
            .filter(|p| p != failed)
            .collect();
        // Best first: the NM's usual metric — fewest pipes, then prefer
        // fast-forwarding modules.
        candidates.sort_by_key(|p| {
            let fast = p
                .steps
                .iter()
                .filter(|s| {
                    mn.nm
                        .abstraction_of(&s.module)
                        .map(|a| a.fast_forwarding)
                        .unwrap_or(false)
                })
                .count();
            (p.pipe_count(), usize::MAX - fast)
        });

        let mut outcome = HealOutcome {
            candidates: candidates.len(),
            replacement: None,
            replacement_label: None,
            teardown_primitives: 0,
            verified: false,
            original_restored: false,
        };
        mn.recorder
            .observe("heal.candidates", outcome.candidates as f64);
        if candidates.is_empty() {
            return outcome;
        }
        // Transactional teardown of the failed configuration, skipping
        // devices the report declared unresponsive (they would not answer —
        // and a rebooted device comes back with clean state).
        outcome.teardown_primitives = mn.teardown_goal(id, &report.unresponsive);

        for candidate in candidates.into_iter().take(self.max_attempts.max(1)) {
            let Ok(plan) = mn.plan_for_path(id, &candidate) else {
                // Pipe-id space exhausted (or the goal vanished): this
                // candidate cannot be numbered; try the next one.
                continue;
            };
            let txn = mn.execute_plan(plan);
            if !txn.committed {
                // The transaction rolled itself back; try the next one.
                continue;
            }
            // Verify inside the goal's flow-attribution window so the probe
            // burst stays attributable when other goals are active.
            mn.net.begin_flow_window(id.0);
            let verified = probe(mn) && probe(mn);
            mn.net.end_flow_window();
            if verified {
                // The repair verified: stop avoiding the suspects — the
                // same exclusion ageing the reconciler's verify step
                // performs, so a transiently blamed component can be
                // routed back over later.
                if let Some(rec) = mn.goals.get_mut(id) {
                    rec.excluded.clear();
                }
                outcome.replacement_label = Some(candidate.technology_label());
                outcome.replacement = Some(candidate);
                outcome.verified = true;
                mn.recorder.inc("heal.verified", 1);
                return outcome;
            }
            // This candidate did not carry traffic either: tear it down
            // before trying the next one.
            outcome.teardown_primitives += mn.teardown_goal(id, &[]);
        }
        // Nothing verified: roll the original configuration back.  Under a
        // partial impairment (a lossy but live link) the old path still
        // carries some traffic, which beats leaving the goal unconfigured.
        // A strict transaction cannot commit through an unresponsive device,
        // so only report the restore when it actually happened.
        let restored = match mn.plan_for_path(id, failed) {
            Ok(plan) => mn.execute_plan(plan).committed,
            Err(_) => false,
        };
        // Park the goal as Failed: every suspect-avoiding candidate was
        // tried and carried no traffic, so a later probe-less reconcile()
        // must not tear the restored partial service down just to reinstall
        // one of those candidates.  `GoalStore::retry` re-arms it.
        if let Some(rec) = mn.goals.get_mut(id) {
            rec.status = GoalStatus::Failed;
            rec.excluded = excluded;
            rec.last_error =
                Some("no replacement path verified; original configuration restored".into());
        }
        if restored {
            mn.recorder.inc("heal.restored", 1);
        }
        outcome.original_restored = restored;
        outcome
    }
}

/// Convenience: the devices a report's suspects implicate (for display).
pub fn implicated_devices(report: &FaultReport) -> Vec<DeviceId> {
    let mut out = BTreeSet::new();
    for s in &report.suspects {
        match &s.target {
            SuspectTarget::Module(m) => {
                out.insert(m.device);
            }
            SuspectTarget::Device(d) => {
                out.insert(*d);
            }
            SuspectTarget::Link { a, b, .. } => {
                out.insert(*a);
                out.insert(*b);
            }
            SuspectTarget::Unlocated => {}
        }
    }
    out.into_iter().collect()
}
