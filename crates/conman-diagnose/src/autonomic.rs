//! The diagnosis stage of the autonomic control loop.
//!
//! [`AutonomicClient`] plugs the `conman-diagnose` machinery into
//! `conman-core`'s [`ControlLoop`](conman_core::runtime::ControlLoop):
//! the [`Diagnoser`] localises a degraded goal from per-goal flow deltas
//! *while the other goals keep pushing traffic* (background closure), and
//! the [`Healer`]'s suspect analysis turns the report into the module
//! exclusions the loop's batched re-plan must respect.  Diagnoser and
//! Healer are thereby clients of the loop — the loop decides *when* to
//! diagnose and *how* to repair (one batched reconcile pass per tick);
//! this module only answers *where the fault is*.

use crate::diagnose::Diagnoser;
use crate::heal::Healer;
use crate::report::SuspectTarget;
use conman_core::nm::GoalId;
use conman_core::runtime::{GoalEndpoints, LoopClient, LoopDiagnosis, ManagedNetwork};
use mgmt_channel::ManagementChannel;

/// The loop's diagnosis client: flow-delta localisation with live
/// background traffic, suspects mapped to plan exclusions.
#[derive(Debug, Clone, Copy, Default)]
pub struct AutonomicClient {
    /// The diagnoser template (probe count etc.); its flow tag is set per
    /// goal on every call.
    pub diagnoser: Diagnoser,
}

impl AutonomicClient {
    /// A client whose diagnoser sends `probes` probes per localisation.
    pub fn new(probes: u32) -> Self {
        AutonomicClient {
            diagnoser: Diagnoser::new(probes),
        }
    }
}

/// One end-to-end datagram between a goal's endpoints; reports delivery by
/// checking the sink host's receive buffer.
fn probe_once<C: ManagementChannel>(
    mn: &mut ManagedNetwork<C>,
    ep: GoalEndpoints,
    payload: Vec<u8>,
) -> bool {
    if mn
        .net
        .send_udp(ep.src, ep.dst_ip, 40000, 7000, &payload)
        .is_err()
    {
        return false;
    }
    mn.net.run_to_quiescence(100_000);
    mn.net
        .device_mut(ep.dst)
        .map(|d| d.take_delivered().iter().any(|p| p.payload == payload))
        .unwrap_or(false)
}

impl<C: ManagementChannel> LoopClient<C> for AutonomicClient {
    fn localise(
        &mut self,
        mn: &mut ManagedNetwork<C>,
        goal: GoalId,
        endpoints: GoalEndpoints,
        background: &[(GoalId, GoalEndpoints)],
    ) -> LoopDiagnosis {
        let Some(path) = mn
            .goals
            .get(goal)
            .and_then(|r| r.applied())
            .map(|a| a.path.clone())
        else {
            return LoopDiagnosis {
                summary: "no applied path to diagnose".into(),
                ..Default::default()
            };
        };
        let diagnoser = self.diagnoser.for_goal(goal);
        let mut seq = 0u64;
        let mut probe = |mn: &mut ManagedNetwork<C>| {
            seq += 1;
            probe_once(mn, endpoints, format!("diag-{}-{seq}", goal.0).into_bytes())
        };
        // Between the diagnosed goal's probes, every other live goal pushes
        // one datagram inside its *own* flow window: the measurement window
        // carries realistic cross-traffic, and only the per-goal
        // attribution keeps the frontier walk pointed at the right device.
        let others: Vec<(GoalId, GoalEndpoints)> = background.to_vec();
        let mut bg_seq = 0u64;
        let mut background = move |mn: &mut ManagedNetwork<C>| {
            for (g, ep) in &others {
                bg_seq += 1;
                mn.net.begin_flow_window(g.0);
                let _ = probe_once(mn, *ep, format!("bg-{}-{bg_seq}", g.0).into_bytes());
                mn.net.end_flow_window();
            }
        };
        let report = diagnoser.diagnose_with_background(mn, &path, &mut probe, &mut background);
        // The one shared suspect→exclusion mapping (Healer::exclusions):
        // blamed links become traversal-level link exclusions, so the
        // loop's batched repair pass reroutes around them in one epoch.
        let excluded = Healer::exclusions(mn, &report);
        let blamed = report.prime_suspect().and_then(|s| match &s.target {
            SuspectTarget::Module(m) => Some(m.device),
            SuspectTarget::Device(d) => Some(*d),
            SuspectTarget::Link { a, .. } => Some(*a),
            SuspectTarget::Unlocated => None,
        });
        let blamed_link = report.suspects.iter().find_map(|s| match &s.target {
            SuspectTarget::Link { a, b, .. } => Some(if a <= b { (*a, *b) } else { (*b, *a) }),
            _ => None,
        });
        let summary = report
            .prime_suspect()
            .map(|s| format!("{:?} ({}%)", s.target, s.confidence_pct))
            .unwrap_or_else(|| "healthy".to_string());
        LoopDiagnosis {
            excluded,
            unresponsive: report.unresponsive.clone(),
            blamed,
            blamed_link,
            summary,
        }
    }
}
