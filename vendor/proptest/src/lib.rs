//! Offline stand-in for the `proptest` crate.
//!
//! Provides the `proptest!` macro surface the workspace's property tests
//! use — `any::<T>()`, integer-range strategies, `collection::vec`,
//! `option::of`, tuple strategies, `prop_assert*` — backed by a
//! deterministic splitmix64 generator seeded from the test name, so runs are
//! reproducible without any external dependency.  Shrinking is not
//! implemented; failures report the offending case via the panic message.

use std::ops::{Range, RangeInclusive};

/// Deterministic test RNG (splitmix64).
pub struct TestRng(u64);

impl TestRng {
    /// Seed from a test name so every test gets a distinct, stable stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Run configuration (`with_cases` mirrors proptest's).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                assert!(span > 0, "empty range strategy");
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let start = *self.start() as u64;
                let end = *self.end() as u64;
                let span = end.wrapping_sub(start).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! strategy_tuple {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
strategy_tuple! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

/// Collection strategies.
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for `Vec<T>` with a length drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// `vec(element, 0..256)` mirrors proptest's combinator.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.sizes.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>`.
    pub struct OptionStrategy<S>(S);

    /// `of(inner)`: `None` roughly a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Assert inside a property (panics with the formatted message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Define property tests: each `fn name(binding in strategy, ...)` body runs
/// for `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let _ = case;
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u8..10, y in 0u32..=3, n in 1usize..4) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y <= 3);
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn collections_and_options(v in crate::collection::vec(any::<u8>(), 0..16), o in crate::option::of(any::<u32>())) {
            prop_assert!(v.len() < 16);
            let _ = o;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        fn config_is_honoured(pair in (any::<u16>(), 0u8..=32)) {
            prop_assert!(pair.1 <= 32);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
