//! Offline stand-in for the `criterion` crate.
//!
//! Implements the slice of criterion's API the workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, the `criterion_group!`/`criterion_main!` macros) with a
//! simple warm-up + timed-loop measurement.  Statistical analysis, plots and
//! baselines are out of scope — the point is that `cargo bench` runs offline
//! and reports a useful mean time per iteration.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("find_paths", 8)` renders as `find_paths/8`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    /// Mean nanoseconds per iteration, recorded by `iter`.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly, measuring mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: a few untimed runs.
        for _ in 0..2 {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if iters >= self.samples as u64 && start.elapsed() >= self.budget {
                break;
            }
            if iters >= 1_000_000 {
                break;
            }
        }
        let elapsed = start.elapsed();
        self.iters = iters;
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Lower bound on iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        // Benches set multi-second budgets meant for criterion's statistics;
        // cap the simple loop so `cargo bench` stays quick.
        self.measurement_time = d.min(Duration::from_millis(300));
        self
    }

    /// Annotate throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            budget: self.measurement_time,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        let mut line = format!(
            "{}/{}: {} ({} iterations)",
            self.name,
            id,
            format_ns(b.mean_ns),
            b.iters
        );
        if let Some(t) = self.throughput {
            let per_sec = match t {
                Throughput::Elements(n) => format!("{:.0} elem/s", n as f64 / (b.mean_ns / 1e9)),
                Throughput::Bytes(n) => format!("{:.0} B/s", n as f64 / (b.mean_ns / 1e9)),
            };
            line.push_str(&format!(" [{per_sec}]"));
        }
        println!("{line}");
    }

    /// Run a benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, &mut f);
        self
    }

    /// Run a parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(&id.name.clone(), &mut |b| f(b, input));
        self
    }

    /// Finish the group (a no-op in the shim).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Entry point collecting benchmark groups.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_millis(300),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = BenchmarkGroup {
            name: "bench".to_string(),
            sample_size: 10,
            measurement_time: Duration::from_millis(300),
            throughput: None,
            _criterion: self,
        };
        let mut f = f;
        g.run_one(id, &mut f);
        self
    }
}

/// Declare a group-runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
