//! Offline stand-in for the `serde_json` crate.
//!
//! A thin facade over the value model and JSON codec that live in the
//! vendored `serde` shim: `to_string` / `to_vec` / `from_str` / `from_slice`
//! plus the [`json!`] macro, which is the subset of serde_json this
//! workspace uses.

pub use serde::value::{Map, Number, Value};

/// Serialization/deserialization error (shared with the serde shim).
pub type Error = serde::Error;

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.serialize().to_json())
}

/// Serialize a value to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(value.serialize().to_json().into_bytes())
}

/// Serialize a value into a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.serialize())
}

/// Deserialize a value from JSON text.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    let v = Value::from_json(text)?;
    T::deserialize(&v)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|_| Error::custom("invalid UTF-8"))?;
    from_str(text)
}

/// Deserialize a typed value from a [`Value`].
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    T::deserialize(value)
}

#[doc(hidden)]
pub fn value_from<T: serde::Serialize>(value: T) -> Value {
    value.serialize()
}

/// Construct a [`Value`] from JSON-like syntax, e.g.
/// `json!({"key": some_expr, "list": [1, 2], "flag": true})`.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ----- array element muncher: (@array [built elems] rest...) -----
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null),] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true),] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false),] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*]),] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($obj:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($obj)*}),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $val:expr , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($val),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $val:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($val),])
    };
    (@array [$($elems:expr,)*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ----- object muncher: (@object map (partial key) (rest) (copy)) -----
    (@object $object:ident () () ()) => {};
    // Insert the finished key/value pair, then continue with the rest.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    // Munch a value after the colon.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($arr:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($arr)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($obj:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($obj)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Accumulate key tokens until the colon.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) $copy);
    };

    // ----- leaves -----
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
        $crate::Value::Object(object)
    }};
    ($other:expr) => {
        $crate::value_from(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_nested_objects() {
        let vid = 22u16;
        let name = "C1".to_string();
        let v = json!({"vlan": {"id": vid, "name": name, "reply": true}});
        assert_eq!(
            v.get("vlan")
                .and_then(|x| x.get("id"))
                .and_then(|x| x.as_u64()),
            Some(22)
        );
        assert_eq!(
            v.get("vlan")
                .and_then(|x| x.get("name"))
                .and_then(|x| x.as_str()),
            Some("C1")
        );
        assert_eq!(
            v.get("vlan")
                .and_then(|x| x.get("reply"))
                .and_then(|x| x.as_bool()),
            Some(true)
        );
    }

    #[test]
    fn macro_supports_expressions_and_arrays() {
        let e = "boom";
        let v = json!({"error": e.to_string(), "codes": [1, 2, 3], "none": null});
        assert_eq!(v.get("error").and_then(|x| x.as_str()), Some("boom"));
        assert_eq!(
            v.get("codes").and_then(|x| x.as_array()).map(Vec::len),
            Some(3)
        );
        assert!(v.get("none").unwrap().is_null());
    }

    #[test]
    fn text_roundtrip() {
        let v = json!({"ikey": 1001u32, "okey": 2001u32, "seq": true});
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
