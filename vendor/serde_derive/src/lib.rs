//! Offline stand-in for `serde_derive`.
//!
//! Parses the derive input with nothing but `proc_macro` (no syn/quote —
//! the build environment is fully offline) and emits impls of the shim
//! `serde::Serialize` / `serde::Deserialize` traits.  Supports the shapes
//! this workspace uses: structs with named fields, tuple structs, unit
//! structs, and enums with unit / tuple / struct variants.  Generic types
//! and `#[serde(...)]` attributes are intentionally unsupported.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

/// Derive the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated impl parses")
}

/// Derive the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: expected enum body, found {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

/// Skip any `#[...]` attributes (including doc comments) and visibility
/// modifiers starting at `*i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Parse `name: Type, ...` field lists, skipping types (angle-bracket aware).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Expect ':' then the type, which runs to the next comma at angle
        // depth zero.
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected ':' after field, found {other:?}"),
        }
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Count the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle = 0i32;
    let mut saw_content = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => saw_content = true,
        }
    }
    if !saw_content {
        0
    } else {
        count
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip to past the next top-level comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text, then re-parsed)
// ---------------------------------------------------------------------------

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => "::serde::value::Value::Null".to_string(),
        Kind::TupleStruct(0) => "::serde::value::Value::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::NamedStruct(fields) => {
            let mut s = String::from("{ let mut m = ::serde::value::Map::new(); ");
            for f in fields {
                let _ = write!(
                    s,
                    "m.insert(String::from(\"{f}\"), ::serde::Serialize::serialize(&self.{f})); "
                );
            }
            s.push_str("::serde::value::Value::Object(m) }");
            s
        }
        Kind::Enum(variants) => {
            let mut s = String::from("match self { ");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        let _ = write!(
                            s,
                            "{name}::{vn} => ::serde::value::Value::String(String::from(\"{vn}\")), "
                        );
                    }
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::serialize(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
                        };
                        let _ = write!(
                            s,
                            "{name}::{vn}({binds}) => {{ let mut m = ::serde::value::Map::new(); \
                             m.insert(String::from(\"{vn}\"), {inner}); \
                             ::serde::value::Value::Object(m) }}, ",
                            binds = binds.join(", ")
                        );
                    }
                    Shape::Named(fields) => {
                        let mut inner = String::from("{ let mut fm = ::serde::value::Map::new(); ");
                        for f in fields {
                            let _ = write!(
                                inner,
                                "fm.insert(String::from(\"{f}\"), ::serde::Serialize::serialize({f})); "
                            );
                        }
                        inner.push_str("::serde::value::Value::Object(fm) }");
                        let _ = write!(
                            s,
                            "{name}::{vn} {{ {fields} }} => {{ let mut m = ::serde::value::Map::new(); \
                             m.insert(String::from(\"{vn}\"), {inner}); \
                             ::serde::value::Value::Object(m) }}, ",
                            fields = fields.join(", ")
                        );
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn serialize(&self) -> ::serde::value::Value {{ {body} }} }}"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => format!("{{ let _ = v; Ok({name}) }}"),
        Kind::TupleStruct(0) => format!("{{ let _ = v; Ok({name}()) }}"),
        Kind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::deserialize(v)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&a[{i}])?"))
                .collect();
            format!(
                "{{ let a = v.as_array().ok_or_else(|| ::serde::Error::custom(\"{name}: expected array\"))?; \
                 if a.len() != {n} {{ return Err(::serde::Error::custom(\"{name}: wrong arity\")); }} \
                 Ok({name}({items})) }}",
                items = items.join(", ")
            )
        }
        Kind::NamedStruct(fields) => {
            let mut s = format!(
                "{{ let m = v.as_object().ok_or_else(|| ::serde::Error::custom(\"{name}: expected object\"))?; Ok({name} {{ "
            );
            for f in fields {
                let _ = write!(
                    s,
                    "{f}: ::serde::Deserialize::deserialize(m.get(\"{f}\").unwrap_or(&::serde::value::Value::Null)).map_err(|e| ::serde::Error::custom(format!(\"{name}.{f}: {{e}}\")))?, "
                );
            }
            s.push_str("}) }");
            s
        }
        Kind::Enum(variants) => {
            let mut s = String::new();
            // Unit variants arrive as bare strings.
            let units: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .collect();
            if !units.is_empty() {
                s.push_str("if let ::serde::value::Value::String(s) = v { match s.as_str() { ");
                for v in &units {
                    let _ = write!(s, "\"{vn}\" => return Ok({name}::{vn}), ", vn = v.name);
                }
                s.push_str("_ => {} } } ");
            }
            // Data variants arrive as single-key objects.
            s.push_str(
                "if let Some(m) = v.as_object() { if let Some((k, inner)) = m.iter().next() { match k.as_str() { ",
            );
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {}
                    Shape::Tuple(1) => {
                        let _ = write!(
                            s,
                            "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::deserialize(inner)?)), "
                        );
                    }
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&a[{i}])?"))
                            .collect();
                        let _ = write!(
                            s,
                            "\"{vn}\" => {{ let a = inner.as_array().ok_or_else(|| ::serde::Error::custom(\"{name}::{vn}: expected array\"))?; \
                             if a.len() != {n} {{ return Err(::serde::Error::custom(\"{name}::{vn}: wrong arity\")); }} \
                             return Ok({name}::{vn}({items})); }} ",
                            items = items.join(", ")
                        );
                    }
                    Shape::Named(fields) => {
                        let mut inner_s = String::from(
                            "{ let fm = inner.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object variant\"))?; ",
                        );
                        let _ = write!(inner_s, "return Ok({name}::{vn} {{ ");
                        for f in fields {
                            let _ = write!(
                                inner_s,
                                "{f}: ::serde::Deserialize::deserialize(fm.get(\"{f}\").unwrap_or(&::serde::value::Value::Null)).map_err(|e| ::serde::Error::custom(format!(\"{name}::{vn}.{f}: {{e}}\")))?, "
                            );
                        }
                        inner_s.push_str("}); }");
                        let _ = write!(s, "\"{vn}\" => {inner_s} ");
                    }
                }
            }
            s.push_str("_ => {} } } } ");
            let _ = write!(
                s,
                "Err(::serde::Error::custom(\"{name}: unrecognised enum value\"))"
            );
            format!("{{ {s} }}")
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn deserialize(v: &::serde::value::Value) -> Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}
