//! The JSON value model plus a text writer and parser.
//!
//! Everything lives here (rather than in the `serde_json` facade) so that
//! map-key encoding, which the generic `BTreeMap`/`HashMap` impls need, can
//! use the JSON codec without a circular dependency.

use crate::{Deserialize, Error, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Object type: keys sorted, so output is deterministic.
pub type Map<K, V> = BTreeMap<K, V>;

/// A JSON number.  Integers are kept exact (the workspace serializes 64-bit
/// device identifiers that do not fit in an f64 mantissa).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` for everything else.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a u64 if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v),
            Value::Number(Number::NegInt(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as an i64 if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(v)) => i64::try_from(*v).ok(),
            Value::Number(Number::NegInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as an f64 if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v as f64),
            Value::Number(Number::NegInt(v)) => Some(*v as f64),
            Value::Number(Number::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object map if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The element vector if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Render as compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }

    /// Parse JSON text into a value.
    pub fn from_json(text: &str) -> Result<Value, Error> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(Error::custom("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_json())
    }
}

/// Encode a map key: strings pass through, anything else becomes its compact
/// JSON text (this is how integer- and enum-keyed maps survive the string
/// keys JSON objects require).
pub fn key_to_string(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        other => other.to_json(),
    }
}

/// Decode a map key produced by [`key_to_string`].
pub fn key_from_str<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::deserialize(&Value::String(s.to_string())) {
        return Ok(k);
    }
    let parsed = Value::from_json(s)?;
    K::deserialize(&parsed)
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(Number::PosInt(n)) => out.push_str(&n.to_string()),
        Value::Number(Number::NegInt(n)) => out.push_str(&n.to_string()),
        Value::Number(Number::Float(x)) => {
            if x.is_finite() {
                // `{:?}` keeps a trailing ".0" on integral floats, so parsing
                // the output reproduces a Float rather than an integer.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, Error> {
    if depth > MAX_DEPTH {
        return Err(Error::custom("JSON nesting too deep"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::custom("unexpected end of JSON input")),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::custom("expected ',' or ']' in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = Map::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::custom("expected ':' after object key"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error::custom("expected ',' or '}' in object")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(Error::custom(format!(
            "unexpected character {:?}",
            *c as char
        ))),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error::custom(format!("invalid literal, expected {lit}")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut is_float = false;
    if bytes.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e') | Some(b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error::custom("invalid number bytes"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::custom("invalid number"));
    }
    if !is_float {
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(v) = stripped.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(-v)));
            }
        } else if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::Number(Number::PosInt(v)));
        }
    }
    text.parse::<f64>()
        .map(|v| Value::Number(Number::Float(v)))
        .map_err(|_| Error::custom(format!("invalid number {text:?}")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::custom("expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::custom("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        if (0xD800..0xDC00).contains(&hi)
                            && bytes.get(*pos + 1) == Some(&b'\\')
                            && bytes.get(*pos + 2) == Some(&b'u')
                        {
                            let lo = parse_hex4(bytes, *pos + 3)?;
                            *pos += 6;
                            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            out.push(char::from_u32(c).unwrap_or('\u{fffd}'));
                        } else {
                            out.push(char::from_u32(hi).unwrap_or('\u{fffd}'));
                        }
                    }
                    _ => return Err(Error::custom("invalid escape sequence")),
                }
                *pos += 1;
            }
            // ASCII fast path: the overwhelmingly common case in wire
            // payloads, pushed without any UTF-8 validation.
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(&b) => {
                // Advance over one multi-byte UTF-8 sequence, validating
                // only that sequence (validating the whole remaining input
                // per character made parsing O(n²) on large documents).
                let len = match b {
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    0xF0..=0xF7 => 4,
                    _ => return Err(Error::custom("invalid UTF-8 in string")),
                };
                let end = *pos + len;
                if end > bytes.len() {
                    return Err(Error::custom("truncated UTF-8 in string"));
                }
                let s = std::str::from_utf8(&bytes[*pos..end])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                let c = s.chars().next().expect("non-empty by guard");
                out.push(c);
                *pos += len;
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, Error> {
    if at + 4 > bytes.len() {
        return Err(Error::custom("truncated \\u escape"));
    }
    let s = std::str::from_utf8(&bytes[at..at + 4]).map_err(|_| Error::custom("bad \\u escape"))?;
    u32::from_str_radix(s, 16).map_err(|_| Error::custom("bad \\u escape"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basics() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "18446744073709551615",
            "1.5",
            "\"hi \\\"there\\\"\"",
            "[1,2,[3]]",
            "{\"a\":1,\"b\":{\"c\":null}}",
        ] {
            let v = Value::from_json(text).unwrap();
            let v2 = Value::from_json(&v.to_json()).unwrap();
            assert_eq!(v, v2, "{text}");
        }
    }

    #[test]
    fn big_u64_survives() {
        let n = u64::MAX - 3;
        let v = Value::Number(Number::PosInt(n));
        let back = Value::from_json(&v.to_json()).unwrap();
        assert_eq!(back.as_u64(), Some(n));
    }

    #[test]
    fn float_keeps_its_point() {
        let v = Value::Number(Number::Float(2.0));
        assert_eq!(v.to_json(), "2.0");
        let back = Value::from_json("2.0").unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn keys_for_non_string_types() {
        assert_eq!(key_to_string(&Value::Number(Number::PosInt(5))), "5");
        let k: u32 = key_from_str("5").unwrap();
        assert_eq!(k, 5);
        let k: String = key_from_str("plain").unwrap();
        assert_eq!(k, "plain");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::from_json("not json").is_err());
        assert!(Value::from_json("{\"a\":}").is_err());
        assert!(Value::from_json("[1,2").is_err());
        assert!(Value::from_json("1 2").is_err());
    }
}
