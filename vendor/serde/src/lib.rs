//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored shim provides the subset of serde's surface the workspace
//! uses: the [`Serialize`] / [`Deserialize`] traits, derive macros of the
//! same names, and impls for the std types that appear in the crates'
//! serialized structures.  Instead of serde's visitor-based data model, the
//! shim converts values to and from an in-tree JSON [`value::Value`]; the
//! companion `serde_json` shim renders and parses that value as JSON text.

pub mod value;

mod impls;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

use std::fmt;

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a JSON [`Value`].
pub trait Serialize {
    /// Convert `self` into a value.
    fn serialize(&self) -> Value;
}

/// A type that can be reconstructed from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a value.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}
