//! `Serialize` / `Deserialize` impls for the std types the workspace uses.

use crate::value::{key_from_str, key_to_string, Map, Number, Value};
use crate::{Deserialize, Error, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::Hash;
use std::net::Ipv4Addr;

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
unsigned_impl!(u8, u16, u32, u64, usize);

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
signed_impl!(i8, i16, i32, i64, isize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
float_impl!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn deserialize(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::deserialize(v).map(Some)
        }
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        match self {
            Ok(v) => m.insert("Ok".to_string(), v.serialize()),
            Err(e) => m.insert("Err".to_string(), e.serialize()),
        };
        Value::Object(m)
    }
}
impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let m = v
            .as_object()
            .ok_or_else(|| Error::custom("expected Ok/Err object"))?;
        if let Some(inner) = m.get("Ok") {
            return T::deserialize(inner).map(Ok);
        }
        if let Some(inner) = m.get("Err") {
            return E::deserialize(inner).map(Err);
        }
        Err(Error::custom("expected Ok or Err key"))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(v)?;
        items
            .try_into()
            .map_err(|_| Error::custom("wrong array length"))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::deserialize(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(key_to_string(&k.serialize()), v.serialize());
        }
        Value::Object(m)
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::custom("expected map"))?;
        let mut out = BTreeMap::new();
        for (k, val) in obj {
            out.insert(key_from_str::<K>(k)?, V::deserialize(val)?);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(key_to_string(&k.serialize()), v.serialize());
        }
        Value::Object(m)
    }
}
impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::custom("expected map"))?;
        let mut out = HashMap::with_capacity(obj.len());
        for (k, val) in obj {
            out.insert(key_from_str::<K>(k)?, V::deserialize(val)?);
        }
        Ok(out)
    }
}

macro_rules! tuple_impl {
    ($(($($name:ident . $idx:tt),+) with $len:literal;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                if items.len() != $len {
                    return Err(Error::custom("wrong tuple length"));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}
tuple_impl! {
    (A.0) with 1;
    (A.0, B.1) with 2;
    (A.0, B.1, C.2) with 3;
    (A.0, B.1, C.2, D.3) with 4;
}

impl Serialize for Ipv4Addr {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for Ipv4Addr {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .ok_or_else(|| Error::custom("expected IPv4 string"))?
            .parse()
            .map_err(|_| Error::custom("invalid IPv4 address"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_with_integer_keys() {
        let mut m: BTreeMap<u32, String> = BTreeMap::new();
        m.insert(7, "seven".into());
        let v = m.serialize();
        let back: BTreeMap<u32, String> = Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn map_with_tuple_keys() {
        let mut m: HashMap<(u16, u32), u64> = HashMap::new();
        m.insert((0, 10001), 42);
        let v = m.serialize();
        let back: HashMap<(u16, u32), u64> = Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn options_results_arrays() {
        let x: Option<u8> = None;
        assert!(x.serialize().is_null());
        let r: Result<u8, String> = Err("nope".into());
        let back: Result<u8, String> = Deserialize::deserialize(&r.serialize()).unwrap();
        assert_eq!(back, r);
        let arr = [1u8, 2, 3, 4, 5, 6];
        let back: [u8; 6] = Deserialize::deserialize(&arr.serialize()).unwrap();
        assert_eq!(back, arr);
    }

    #[test]
    fn ipv4() {
        let a: Ipv4Addr = "10.0.1.5".parse().unwrap();
        let back: Ipv4Addr = Deserialize::deserialize(&a.serialize()).unwrap();
        assert_eq!(back, a);
    }
}
