//! Deterministic tick-by-tick tests for the autonomic control loop.
//!
//! Everything here runs on the simulated clock: a fault injected after
//! tick `T` is detected by tick `T+1`'s health round and repaired within a
//! bounded tick budget, a converged loop sends zero management messages,
//! simultaneous faults on different goals heal independently, an operator
//! withdraw cancels an in-flight repair cleanly, and a goal whose every
//! repair fails lands in `Failed` instead of thrashing forever.
//!
//! The mesh scenarios exercise link-suspect-aware planning: on the
//! multipath topologies a blamed core link is rerouted around in **one**
//! batched pass (no repair-budget burn), while the same blame on a chain —
//! which has no alternative — falls back to reinstall-through instead of
//! parking the goal `Failed`.

use conman::core::nm::{GoalId, GoalStatus, PathFinderLimits};
use conman::core::runtime::{
    ControlLoop, GoalEndpoints, LoopConfig, ManagedNetwork, ReconcileAction,
};
use conman::diagnose::AutonomicClient;
use conman::modules::{managed_fanout_chain, managed_mesh_fanout, ManagedChain, ManagedMesh};
use conman::netsim::fault::{apply_fault, FaultKind, Misconfiguration};
use conman::netsim::route::RouteTableId;
use mgmt_channel::OutOfBandChannel;

type Chain = ManagedChain<OutOfBandChannel>;
type Mesh = ManagedMesh<OutOfBandChannel>;

/// A discovered fan-out chain with `goals` goals submitted and tracked by a
/// fresh control loop (not yet converged).
fn looped_chain(n: usize, goals: usize) -> (Chain, ControlLoop<OutOfBandChannel>, Vec<GoalId>) {
    let mut t = managed_fanout_chain(n, goals);
    t.discover();
    t.mn.goals.limits = PathFinderLimits {
        max_steps: 3 * n + 16,
        max_paths: 32,
    };
    let mut cl = ControlLoop::new(&t.mn, LoopConfig::default())
        .with_client(Box::new(AutonomicClient::new(2)));
    let mut ids = Vec::new();
    for k in 0..goals {
        let (src, dst, dst_ip) = t.fanout_probe(k);
        let id = t.mn.submit(t.fanout_goal(k));
        cl.track(id, GoalEndpoints { src, dst, dst_ip });
        ids.push(id);
    }
    (t, cl, ids)
}

/// Path-finder limits for a multipath core of `k` stages (k + 2 ISP
/// routers on the longest row path, alternatives worth an enumeration
/// budget beyond the chain's).
fn mesh_limits(k: usize) -> PathFinderLimits {
    PathFinderLimits {
        max_steps: 3 * (k + 2) + 16,
        max_paths: 64,
    }
}

/// A discovered 2×k mesh with `goals` goals submitted and tracked by a
/// fresh control loop (not yet converged).
fn looped_mesh(k: usize, goals: usize) -> (Mesh, ControlLoop<OutOfBandChannel>, Vec<GoalId>) {
    let mut t = managed_mesh_fanout(k, goals);
    t.discover();
    t.mn.goals.limits = mesh_limits(k);
    let mut cl = ControlLoop::new(&t.mn, LoopConfig::default())
        .with_client(Box::new(AutonomicClient::new(2)));
    let mut ids = Vec::new();
    for g in 0..goals {
        let (src, dst, dst_ip) = t.fanout_probe(g);
        let id = t.mn.submit(t.fanout_goal(g));
        cl.track(id, GoalEndpoints { src, dst, dst_ip });
        ids.push(id);
    }
    (t, cl, ids)
}

/// The derived route-table range of a goal's applied pipe block (via the
/// IP module's authoritative numbering).
fn goal_tables(mn: &ManagedNetwork<OutOfBandChannel>, id: GoalId) -> (RouteTableId, RouteTableId) {
    let applied = mn.goals.get(id).and_then(|r| r.applied()).expect("applied");
    conman::modules::derived_table_range(
        applied.pipe_base,
        conman::core::nm::script::slot_count(&applied.path),
    )
}

#[test]
fn fault_after_tick_t_is_detected_and_repaired_within_two_ticks() {
    let (mut t, mut cl, _ids) = looped_chain(4, 2);
    let setup = cl.run_until_converged(&mut t.mn, 10);
    assert!(setup.converged, "setup converges");
    let fault_tick = cl.ticks();

    // Core state loss on the mid-chain router, injected between ticks.
    apply_fault(
        &mut t.mn.net,
        FaultKind::Misconfigure(Misconfiguration::ClearMplsState { device: t.core[1] }),
    );
    apply_fault(
        &mut t.mn.net,
        FaultKind::Misconfigure(Misconfiguration::FlushPolicyRouting { device: t.core[1] }),
    );

    let run = cl.run_until_converged(&mut t.mn, 6);
    assert!(run.converged, "the loop re-converges: {run:#?}");
    let detect = run.first_detection().expect("a health round detected");
    let repair = run.first_repair().expect("a repair pass converged");
    assert_eq!(detect, fault_tick + 1, "the very next health round detects");
    assert!(
        repair <= fault_tick + 2,
        "repair within two ticks of the fault (got tick {repair})"
    );
    assert!(
        (0..2).all(|k| t.probe_pair(k)),
        "traffic verified end to end"
    );
}

#[test]
fn a_converged_loop_sends_zero_reconfiguration_messages() {
    let (mut t, mut cl, _ids) = looped_chain(4, 3);
    assert!(cl.run_until_converged(&mut t.mn, 10).converged);
    for _ in 0..5 {
        let tick = cl.tick(&mut t.mn);
        assert_eq!(tick.nm_sent, 0, "a quiescent tick sends nothing: {tick:#?}");
        assert_eq!(tick.nm_received, 0);
        assert!(tick.quiescent());
        assert!(tick.repair.is_none(), "no repair pass runs when converged");
    }
    // The goals are still healthy — silence is convergence, not neglect.
    assert!((0..3).all(|k| t.probe_pair(k)));
}

#[test]
fn simultaneous_faults_on_different_goals_heal_independently() {
    let (mut t, mut cl, ids) = looped_chain(4, 3);
    assert!(cl.run_until_converged(&mut t.mn, 10).converged);

    // Two simultaneous per-goal faults: goals 0 and 1 each lose their own
    // derived route tables at the ingress edge (disjoint pipe blocks, so
    // disjoint table ranges).  Goal 2 keeps carrying traffic throughout —
    // per-goal state is the blast radius.
    for &id in &ids[..2] {
        let (first, last) = goal_tables(&t.mn, id);
        apply_fault(
            &mut t.mn.net,
            FaultKind::Misconfigure(Misconfiguration::FlushRouteTables {
                device: t.core[0],
                first,
                last,
            }),
        );
    }

    let run = cl.run_until_converged(&mut t.mn, 6);
    assert!(run.converged, "both repairs land: {run:#?}");
    let detect_tick = run
        .ticks
        .iter()
        .find(|tk| !tk.degraded.is_empty())
        .expect("detection happened");
    assert_eq!(
        detect_tick.degraded,
        vec![ids[0], ids[1]],
        "exactly the two faulted goals degrade — goal 2's health is judged \
         from its own attributed counters, not device totals"
    );
    // Each goal got its own diagnosis, and each blamed the faulted edge.
    let blamed = |goal: GoalId| {
        detect_tick
            .diagnosed
            .iter()
            .find(|(g, _)| *g == goal)
            .and_then(|(_, d)| d.blamed)
    };
    assert_eq!(blamed(ids[0]), Some(t.core[0]));
    assert_eq!(blamed(ids[1]), Some(t.core[0]));
    // The healthy bystander was never dragged into the repair.
    let repair = detect_tick.repair.as_ref().expect("a repair pass ran");
    assert!(
        repair
            .outcome(ids[2])
            .is_none_or(|o| o.action == conman::core::runtime::ReconcileAction::Unchanged),
        "goal 2 rode through untouched"
    );
    assert!(
        (0..3).all(|k| t.probe_pair(k)),
        "all three goals carry traffic"
    );
    assert!(t.mn.goals.iter().all(|r| r.status == GoalStatus::Active));
}

#[test]
fn operator_withdraw_mid_repair_cancels_the_repair_cleanly() {
    let (mut t, mut cl, ids) = looped_chain(4, 2);
    assert!(cl.run_until_converged(&mut t.mn, 10).converged);

    // An unrepairable fault: cut the first core link — every candidate
    // path crosses it, so the repair machinery can only thrash.
    let link = t.core_link(0).expect("core link");
    apply_fault(&mut t.mn.net, FaultKind::LinkCut(link));

    // One tick of failing repair (both goals degrade, reinstall commits,
    // verification fails).
    let tick = cl.tick(&mut t.mn);
    assert_eq!(tick.degraded.len(), 2);
    assert!(tick.repair.is_some());
    assert!(
        t.mn.goals.iter().all(|r| r.status.needs_work()),
        "repairs are in flight"
    );

    // The operator withdraws goal 0 mid-repair.  The withdrawal is
    // processed before any repair work next tick: the goal is gone, its
    // endpoints dropped, and no pass ever resurrects it.
    cl.withdraw(ids[0]);
    let tick = cl.tick(&mut t.mn);
    assert_eq!(tick.withdrawn, vec![ids[0]]);
    assert!(t.mn.goals.get(ids[0]).is_none(), "the record is gone");
    assert!(
        tick.repair
            .as_ref()
            .is_none_or(|r| r.outcome(ids[0]).is_none()),
        "the repair pass no longer carries the withdrawn goal"
    );
    // Restore the link: the surviving goal repairs; the withdrawn one
    // stays gone.
    apply_fault(&mut t.mn.net, FaultKind::LinkRestore(link));
    let run = cl.run_until_converged(&mut t.mn, 8);
    assert!(run.converged);
    assert_eq!(t.mn.goals.len(), 1);
    assert_eq!(t.mn.goals.status(ids[1]), Some(GoalStatus::Active));
    assert!(!t.probe_pair(0), "withdrawn goal's traffic stays down");
    assert!(t.probe_pair(1));
}

#[test]
fn repeated_repair_failure_parks_the_goal_failed_not_repairing() {
    let (mut t, mut cl, ids) = looped_chain(4, 1);
    assert!(cl.run_until_converged(&mut t.mn, 10).converged);
    let budget = t.mn.goals.max_repair_attempts;
    assert!(budget > 0, "the repair budget is armed by default");

    let link = t.core_link(1).expect("core link");
    apply_fault(&mut t.mn.net, FaultKind::LinkCut(link));

    // Tick until the goal settles: it must land `Failed` — never stuck in
    // `Repairing` — once the budget is exhausted.
    let run = cl.run_until_converged(&mut t.mn, (budget + 4) as u64);
    assert!(run.converged, "the loop settles even though repair failed");
    let rec = t.mn.goals.get(ids[0]).expect("still stored");
    assert_eq!(rec.status, GoalStatus::Failed, "budget exhausted => Failed");
    assert!(rec
        .last_error
        .as_deref()
        .unwrap_or_default()
        .contains("giving up"));

    // Failed goals are left alone: the pipe allocator stops moving and the
    // management plane goes silent again.
    let base = t.mn.goals.peek_pipe_base();
    for _ in 0..3 {
        let tick = cl.tick(&mut t.mn);
        assert_eq!(tick.nm_sent, 0, "failed goals are not re-attempted");
        assert!(tick.repair.is_none());
    }
    assert_eq!(t.mn.goals.peek_pipe_base(), base, "no pipe-block leak");

    // The operator can re-arm it: restore the link, retry, and the loop
    // picks it up on the next tick.
    apply_fault(&mut t.mn.net, FaultKind::LinkRestore(link));
    assert!(t.mn.goals.retry(ids[0]));
    let run = cl.run_until_converged(&mut t.mn, 6);
    assert!(run.converged);
    assert_eq!(t.mn.goals.status(ids[0]), Some(GoalStatus::Active));
    assert!(t.probe_pair(0));
}

#[test]
fn push_mode_flow_reports_surface_as_counter_delta_events() {
    let (mut t, mut cl, _ids) = looped_chain(4, 2);
    assert!(cl.run_until_converged(&mut t.mn, 10).converged);

    // The repair tick subscribed the path devices to the goals' flow tags.
    // A faulty tick's telemetry polls give the agents a chance to push:
    // the watched counters moved (health probes), so unsolicited reports
    // ride back alongside the poll replies...
    apply_fault(
        &mut t.mn.net,
        FaultKind::Misconfigure(Misconfiguration::FlushPolicyRouting { device: t.core[1] }),
    );
    apply_fault(
        &mut t.mn.net,
        FaultKind::Misconfigure(Misconfiguration::ClearMplsState { device: t.core[1] }),
    );
    let faulty = cl.tick(&mut t.mn);
    assert!(!faulty.degraded.is_empty());

    // ...and surface as CounterDelta events on the next tick's stream —
    // which stays management-silent: the pushes were already on the wire.
    let next = cl.tick(&mut t.mn);
    assert!(
        next.counter_deltas > 0,
        "pushed flow reports become events: {next:#?}"
    );
    assert_eq!(next.nm_sent, 0, "draining pushed reports costs nothing");
}

#[test]
fn mesh_core_link_cut_is_rerouted_in_one_batched_pass() {
    let (mut t, mut cl, ids) = looped_mesh(2, 2);
    assert!(cl.run_until_converged(&mut t.mn, 10).converged);
    let fault_tick = cl.ticks();

    // Cut the first core-to-core link of the applied path.  The 2×k mesh
    // keeps a whole second row (plus cross-links), so a genuine alternative
    // exists — this is the scenario the chain could never express.
    let hop = t.applied_core_hop(ids[0]).expect("a core hop exists");
    let link = t.link(hop.0, hop.1).expect("the hop is a physical link");
    apply_fault(&mut t.mn.net, FaultKind::LinkCut(link));

    let run = cl.run_until_converged(&mut t.mn, 6);
    assert!(run.converged, "the loop re-converges: {run:#?}");
    let detect = run.first_detection().expect("a health round detected");
    let repair = run.first_repair().expect("a repair pass converged");
    assert_eq!(detect, fault_tick + 1, "the very next health round detects");
    assert!(
        repair <= fault_tick + 2,
        "reroute within two ticks of the cut (got tick {repair})"
    );

    // Diagnosis blamed the *link* (not just a device), and the repair was
    // ONE batched pass: every goal Reapplied on its first attempt — no
    // ProbeFailed / ExecuteFailed / PlanFailed outcome anywhere, so the
    // repair budget is untouched and no goal ever parked `Failed`.
    let detect_tick = run
        .ticks
        .iter()
        .find(|tk| !tk.degraded.is_empty())
        .expect("detection tick");
    let want = if hop.0 <= hop.1 {
        (hop.0, hop.1)
    } else {
        (hop.1, hop.0)
    };
    for (g, d) in &detect_tick.diagnosed {
        assert_eq!(
            d.blamed_link,
            Some(want),
            "goal {g}'s diagnosis must blame the cut link: {}",
            d.summary
        );
    }
    let repair_passes: usize = run
        .ticks
        .iter()
        .filter(|tk| {
            tk.repair.as_ref().is_some_and(|r| {
                r.outcomes
                    .iter()
                    .any(|o| o.action != ReconcileAction::Unchanged)
            })
        })
        .count();
    assert_eq!(
        repair_passes, 1,
        "one batched pass reroutes the whole fleet"
    );
    for tk in &run.ticks {
        if let Some(r) = &tk.repair {
            for o in &r.outcomes {
                assert!(
                    matches!(
                        o.action,
                        ReconcileAction::Unchanged | ReconcileAction::Reapplied
                    ),
                    "no failed repair attempt may burn budget: {o:?}"
                );
            }
        }
    }
    for &id in &ids {
        let rec = t.mn.goals.get(id).expect("stored");
        assert_eq!(rec.status, GoalStatus::Active);
        assert_eq!(rec.repair_attempts, 0, "no repair-budget burn");
        // The replacement path genuinely routes around the cut link.
        let devices = rec.applied().expect("applied").path.devices();
        assert!(
            !devices
                .windows(2)
                .any(|w| (w[0], w[1]) == hop || (w[1], w[0]) == hop),
            "the new path must avoid the cut link: {devices:?}"
        );
    }
    assert!(
        (0..2).all(|g| t.probe_pair(g)),
        "traffic verified end to end"
    );
}

#[test]
fn mesh_blamed_link_is_diagnosed_under_background_traffic() {
    use conman::diagnose::{Diagnoser, SuspectTarget};

    let (mut t, mut cl, ids) = looped_mesh(2, 4);
    assert!(cl.run_until_converged(&mut t.mn, 10).converged);
    let hop = t.applied_core_hop(ids[0]).expect("core hop");
    let link = t.link(hop.0, hop.1).expect("link");
    apply_fault(&mut t.mn.net, FaultKind::LinkCut(link));

    // Diagnose goal 0 exactly the way the loop client does — its own probe
    // inside its flow window, every *other* goal pushing a datagram inside
    // its own window between probes.  The background bursts die on the same
    // cut link, ballooning the shared devices' drop tallies; only per-goal
    // flow attribution keeps the frontier walk pointed at the *link* rather
    // than at whichever device dropped the most.
    let path =
        t.mn.goals
            .get(ids[0])
            .and_then(|r| r.applied())
            .map(|a| a.path.clone())
            .expect("applied path");
    let endpoints: Vec<(
        GoalId,
        (conman::netsim::device::DeviceId, std::net::Ipv4Addr),
    )> = ids
        .iter()
        .enumerate()
        .map(|(k, &id)| {
            let (src, _, dst_ip) = t.fanout_probe(k);
            (id, (src, dst_ip))
        })
        .collect();
    let (probe_src, probe_dst, probe_ip) = t.fanout_probe(0);
    let mut seq = 0u64;
    let mut probe = |mn: &mut ManagedNetwork<OutOfBandChannel>| {
        seq += 1;
        let payload = format!("mesh-diag-{seq}").into_bytes();
        mn.net
            .send_udp(probe_src, probe_ip, 40000, 7000, &payload)
            .unwrap();
        mn.net.run_to_quiescence(100_000);
        mn.net
            .device_mut(probe_dst)
            .map(|d| d.take_delivered().iter().any(|p| p.payload == payload))
            .unwrap_or(false)
    };
    let mut bg_seq = 0u64;
    let mut background = |mn: &mut ManagedNetwork<OutOfBandChannel>| {
        for (g, (src, dst_ip)) in endpoints.iter().skip(1) {
            bg_seq += 1;
            mn.net.begin_flow_window(g.0);
            let _ = mn.net.send_udp(
                *src,
                *dst_ip,
                40000,
                7000,
                format!("bg-{}-{bg_seq}", g.0).into_bytes().as_slice(),
            );
            mn.net.run_to_quiescence(100_000);
            mn.net.end_flow_window();
        }
    };
    let report = Diagnoser::new(2).for_goal(ids[0]).diagnose_with_background(
        &mut t.mn,
        &path,
        &mut probe,
        &mut background,
    );
    assert!(!report.healthy);
    assert!(
        report.blames_link(hop.0, hop.1),
        "the cut core link must be blamed under background load: {:#?}",
        report.suspects
    );
    match &report.prime_suspect().expect("suspect").target {
        SuspectTarget::Link { link: found, .. } => assert_eq!(*found, Some(link)),
        other => panic!("the prime suspect must be the link, not {other:?}"),
    }
}

#[test]
fn chain_blamed_link_falls_back_to_reinstall_instead_of_failing() {
    // On a chain the same link blame has no alternative: the planner's
    // suspect-fallback must drop the link exclusion and reinstall through —
    // symmetric with blamed edge modules — not park the goal `Failed` with
    // an instant `PlanFailed`.
    let (mut t, mut cl, ids) = looped_chain(4, 1);
    assert!(cl.run_until_converged(&mut t.mn, 10).converged);
    let link = t.core_link(1).expect("core link");
    apply_fault(&mut t.mn.net, FaultKind::LinkCut(link));

    let tick = cl.tick(&mut t.mn);
    assert_eq!(tick.degraded, ids, "the cut degrades the goal");
    let outcome = tick
        .repair
        .as_ref()
        .and_then(|r| r.outcome(ids[0]))
        .expect("a repair pass ran");
    assert_eq!(
        outcome.action,
        ReconcileAction::ProbeFailed,
        "the reinstall-through committed and only the verification failed"
    );
    let rec = t.mn.goals.get(ids[0]).expect("stored");
    assert_eq!(
        rec.status,
        GoalStatus::Degraded,
        "one failed attempt, not Failed"
    );
    assert_eq!(rec.repair_attempts, 1);

    // The link flap ends: the next pass reinstalls over the restored link
    // and the goal converges — exactly what parking it `Failed` would have
    // forfeited.
    apply_fault(&mut t.mn.net, FaultKind::LinkRestore(link));
    let run = cl.run_until_converged(&mut t.mn, 6);
    assert!(run.converged, "{run:#?}");
    assert_eq!(t.mn.goals.status(ids[0]), Some(GoalStatus::Active));
    assert!(t.probe_pair(0));
}

#[test]
fn verified_repair_ages_out_exclusions_so_the_recovered_path_is_routable_again() {
    let (mut t, mut cl, ids) = looped_mesh(2, 1);
    assert!(cl.run_until_converged(&mut t.mn, 10).converged);

    // First fault: cut the original path's core link; the goal reroutes
    // onto the other row in one pass.
    let hop1 = t.applied_core_hop(ids[0]).expect("core hop");
    let link1 = t.link(hop1.0, hop1.1).expect("link");
    apply_fault(&mut t.mn.net, FaultKind::LinkCut(link1));
    assert!(cl.run_until_converged(&mut t.mn, 6).converged);
    let rec = t.mn.goals.get(ids[0]).expect("stored");
    assert!(
        rec.excluded.is_empty(),
        "a verified repair clears the exclusion set: {:?}",
        rec.excluded
    );
    let hop2 = t.applied_core_hop(ids[0]).expect("new core hop");
    assert_ne!(hop1, hop2, "the goal moved onto the other row");

    // The original link recovers; then the *new* path's core link dies.
    // Routing back over the recovered original must still be possible —
    // a permanently remembered exclusion would wrongly rule it out.
    apply_fault(&mut t.mn.net, FaultKind::LinkRestore(link1));
    let link2 = t.link(hop2.0, hop2.1).expect("link");
    apply_fault(&mut t.mn.net, FaultKind::LinkCut(link2));
    let run = cl.run_until_converged(&mut t.mn, 6);
    assert!(run.converged, "{run:#?}");
    let rec = t.mn.goals.get(ids[0]).expect("stored");
    assert_eq!(rec.status, GoalStatus::Active);
    assert_eq!(rec.repair_attempts, 0, "second reroute burned no budget");
    let devices = rec.applied().expect("applied").path.devices();
    assert!(
        devices
            .windows(2)
            .any(|w| (w[0], w[1]) == hop1 || (w[1], w[0]) == hop1),
        "the goal routed back over the recovered original link: {devices:?}"
    );
    assert!(t.probe_pair(0));
}

#[test]
fn ring_link_cut_heals_onto_the_other_arc() {
    use conman::modules::managed_ring_fanout;

    let mut t = managed_ring_fanout(4, 2);
    t.discover();
    t.mn.goals.limits = mesh_limits(4);
    let mut cl = ControlLoop::new(&t.mn, LoopConfig::default())
        .with_client(Box::new(AutonomicClient::new(2)));
    let mut ids = Vec::new();
    for g in 0..2 {
        let (src, dst, dst_ip) = t.fanout_probe(g);
        let id = t.mn.submit(t.fanout_goal(g));
        cl.track(id, GoalEndpoints { src, dst, dst_ip });
        ids.push(id);
    }
    assert!(cl.run_until_converged(&mut t.mn, 10).converged);

    let hop = t.applied_core_hop(ids[0]).expect("ring hop");
    let link = t.link(hop.0, hop.1).expect("link");
    apply_fault(&mut t.mn.net, FaultKind::LinkCut(link));
    let run = cl.run_until_converged(&mut t.mn, 6);
    assert!(run.converged, "{run:#?}");
    for &id in &ids {
        let rec = t.mn.goals.get(id).expect("stored");
        assert_eq!(rec.status, GoalStatus::Active);
        assert_eq!(rec.repair_attempts, 0, "the other arc took over cleanly");
        let devices = rec.applied().expect("applied").path.devices();
        assert!(
            !devices
                .windows(2)
                .any(|w| (w[0], w[1]) == hop || (w[1], w[0]) == hop),
            "the repaired path must use the other arc: {devices:?}"
        );
    }
    assert!((0..2).all(|g| t.probe_pair(g)));
}
