//! Deterministic tick-by-tick tests for the autonomic control loop.
//!
//! Everything here runs on the simulated clock: a fault injected after
//! tick `T` is detected by tick `T+1`'s health round and repaired within a
//! bounded tick budget, a converged loop sends zero management messages,
//! simultaneous faults on different goals heal independently, an operator
//! withdraw cancels an in-flight repair cleanly, and a goal whose every
//! repair fails lands in `Failed` instead of thrashing forever.

use conman::core::nm::{GoalId, GoalStatus, PathFinderLimits};
use conman::core::runtime::{ControlLoop, GoalEndpoints, LoopConfig, ManagedNetwork};
use conman::diagnose::AutonomicClient;
use conman::modules::{managed_fanout_chain, ManagedChain};
use conman::netsim::fault::{apply_fault, FaultKind, Misconfiguration};
use conman::netsim::route::RouteTableId;
use mgmt_channel::OutOfBandChannel;

type Chain = ManagedChain<OutOfBandChannel>;

/// A discovered fan-out chain with `goals` goals submitted and tracked by a
/// fresh control loop (not yet converged).
fn looped_chain(n: usize, goals: usize) -> (Chain, ControlLoop<OutOfBandChannel>, Vec<GoalId>) {
    let mut t = managed_fanout_chain(n, goals);
    t.discover();
    t.mn.goals.limits = PathFinderLimits {
        max_steps: 3 * n + 16,
        max_paths: 32,
    };
    let mut cl = ControlLoop::new(&t.mn, LoopConfig::default())
        .with_client(Box::new(AutonomicClient::new(2)));
    let mut ids = Vec::new();
    for k in 0..goals {
        let (src, dst, dst_ip) = t.fanout_probe(k);
        let id = t.mn.submit(t.fanout_goal(k));
        cl.track(id, GoalEndpoints { src, dst, dst_ip });
        ids.push(id);
    }
    (t, cl, ids)
}

/// The derived route-table range of a goal's applied pipe block (via the
/// IP module's authoritative numbering).
fn goal_tables(mn: &ManagedNetwork<OutOfBandChannel>, id: GoalId) -> (RouteTableId, RouteTableId) {
    let applied = mn.goals.get(id).and_then(|r| r.applied()).expect("applied");
    conman::modules::derived_table_range(
        applied.pipe_base,
        conman::core::nm::script::slot_count(&applied.path),
    )
}

#[test]
fn fault_after_tick_t_is_detected_and_repaired_within_two_ticks() {
    let (mut t, mut cl, _ids) = looped_chain(4, 2);
    let setup = cl.run_until_converged(&mut t.mn, 10);
    assert!(setup.converged, "setup converges");
    let fault_tick = cl.ticks();

    // Core state loss on the mid-chain router, injected between ticks.
    apply_fault(
        &mut t.mn.net,
        FaultKind::Misconfigure(Misconfiguration::ClearMplsState { device: t.core[1] }),
    );
    apply_fault(
        &mut t.mn.net,
        FaultKind::Misconfigure(Misconfiguration::FlushPolicyRouting { device: t.core[1] }),
    );

    let run = cl.run_until_converged(&mut t.mn, 6);
    assert!(run.converged, "the loop re-converges: {run:#?}");
    let detect = run.first_detection().expect("a health round detected");
    let repair = run.first_repair().expect("a repair pass converged");
    assert_eq!(detect, fault_tick + 1, "the very next health round detects");
    assert!(
        repair <= fault_tick + 2,
        "repair within two ticks of the fault (got tick {repair})"
    );
    assert!(
        (0..2).all(|k| t.probe_pair(k)),
        "traffic verified end to end"
    );
}

#[test]
fn a_converged_loop_sends_zero_reconfiguration_messages() {
    let (mut t, mut cl, _ids) = looped_chain(4, 3);
    assert!(cl.run_until_converged(&mut t.mn, 10).converged);
    for _ in 0..5 {
        let tick = cl.tick(&mut t.mn);
        assert_eq!(tick.nm_sent, 0, "a quiescent tick sends nothing: {tick:#?}");
        assert_eq!(tick.nm_received, 0);
        assert!(tick.quiescent());
        assert!(tick.repair.is_none(), "no repair pass runs when converged");
    }
    // The goals are still healthy — silence is convergence, not neglect.
    assert!((0..3).all(|k| t.probe_pair(k)));
}

#[test]
fn simultaneous_faults_on_different_goals_heal_independently() {
    let (mut t, mut cl, ids) = looped_chain(4, 3);
    assert!(cl.run_until_converged(&mut t.mn, 10).converged);

    // Two simultaneous per-goal faults: goals 0 and 1 each lose their own
    // derived route tables at the ingress edge (disjoint pipe blocks, so
    // disjoint table ranges).  Goal 2 keeps carrying traffic throughout —
    // per-goal state is the blast radius.
    for &id in &ids[..2] {
        let (first, last) = goal_tables(&t.mn, id);
        apply_fault(
            &mut t.mn.net,
            FaultKind::Misconfigure(Misconfiguration::FlushRouteTables {
                device: t.core[0],
                first,
                last,
            }),
        );
    }

    let run = cl.run_until_converged(&mut t.mn, 6);
    assert!(run.converged, "both repairs land: {run:#?}");
    let detect_tick = run
        .ticks
        .iter()
        .find(|tk| !tk.degraded.is_empty())
        .expect("detection happened");
    assert_eq!(
        detect_tick.degraded,
        vec![ids[0], ids[1]],
        "exactly the two faulted goals degrade — goal 2's health is judged \
         from its own attributed counters, not device totals"
    );
    // Each goal got its own diagnosis, and each blamed the faulted edge.
    let blamed = |goal: GoalId| {
        detect_tick
            .diagnosed
            .iter()
            .find(|(g, _)| *g == goal)
            .and_then(|(_, d)| d.blamed)
    };
    assert_eq!(blamed(ids[0]), Some(t.core[0]));
    assert_eq!(blamed(ids[1]), Some(t.core[0]));
    // The healthy bystander was never dragged into the repair.
    let repair = detect_tick.repair.as_ref().expect("a repair pass ran");
    assert!(
        repair
            .outcome(ids[2])
            .is_none_or(|o| o.action == conman::core::runtime::ReconcileAction::Unchanged),
        "goal 2 rode through untouched"
    );
    assert!(
        (0..3).all(|k| t.probe_pair(k)),
        "all three goals carry traffic"
    );
    assert!(t.mn.goals.iter().all(|r| r.status == GoalStatus::Active));
}

#[test]
fn operator_withdraw_mid_repair_cancels_the_repair_cleanly() {
    let (mut t, mut cl, ids) = looped_chain(4, 2);
    assert!(cl.run_until_converged(&mut t.mn, 10).converged);

    // An unrepairable fault: cut the first core link — every candidate
    // path crosses it, so the repair machinery can only thrash.
    let link = t.core_link(0).expect("core link");
    apply_fault(&mut t.mn.net, FaultKind::LinkCut(link));

    // One tick of failing repair (both goals degrade, reinstall commits,
    // verification fails).
    let tick = cl.tick(&mut t.mn);
    assert_eq!(tick.degraded.len(), 2);
    assert!(tick.repair.is_some());
    assert!(
        t.mn.goals.iter().all(|r| r.status.needs_work()),
        "repairs are in flight"
    );

    // The operator withdraws goal 0 mid-repair.  The withdrawal is
    // processed before any repair work next tick: the goal is gone, its
    // endpoints dropped, and no pass ever resurrects it.
    cl.withdraw(ids[0]);
    let tick = cl.tick(&mut t.mn);
    assert_eq!(tick.withdrawn, vec![ids[0]]);
    assert!(t.mn.goals.get(ids[0]).is_none(), "the record is gone");
    assert!(
        tick.repair
            .as_ref()
            .is_none_or(|r| r.outcome(ids[0]).is_none()),
        "the repair pass no longer carries the withdrawn goal"
    );
    // Restore the link: the surviving goal repairs; the withdrawn one
    // stays gone.
    apply_fault(&mut t.mn.net, FaultKind::LinkRestore(link));
    let run = cl.run_until_converged(&mut t.mn, 8);
    assert!(run.converged);
    assert_eq!(t.mn.goals.len(), 1);
    assert_eq!(t.mn.goals.status(ids[1]), Some(GoalStatus::Active));
    assert!(!t.probe_pair(0), "withdrawn goal's traffic stays down");
    assert!(t.probe_pair(1));
}

#[test]
fn repeated_repair_failure_parks_the_goal_failed_not_repairing() {
    let (mut t, mut cl, ids) = looped_chain(4, 1);
    assert!(cl.run_until_converged(&mut t.mn, 10).converged);
    let budget = t.mn.goals.max_repair_attempts;
    assert!(budget > 0, "the repair budget is armed by default");

    let link = t.core_link(1).expect("core link");
    apply_fault(&mut t.mn.net, FaultKind::LinkCut(link));

    // Tick until the goal settles: it must land `Failed` — never stuck in
    // `Repairing` — once the budget is exhausted.
    let run = cl.run_until_converged(&mut t.mn, (budget + 4) as u64);
    assert!(run.converged, "the loop settles even though repair failed");
    let rec = t.mn.goals.get(ids[0]).expect("still stored");
    assert_eq!(rec.status, GoalStatus::Failed, "budget exhausted => Failed");
    assert!(rec
        .last_error
        .as_deref()
        .unwrap_or_default()
        .contains("giving up"));

    // Failed goals are left alone: the pipe allocator stops moving and the
    // management plane goes silent again.
    let base = t.mn.goals.peek_pipe_base();
    for _ in 0..3 {
        let tick = cl.tick(&mut t.mn);
        assert_eq!(tick.nm_sent, 0, "failed goals are not re-attempted");
        assert!(tick.repair.is_none());
    }
    assert_eq!(t.mn.goals.peek_pipe_base(), base, "no pipe-block leak");

    // The operator can re-arm it: restore the link, retry, and the loop
    // picks it up on the next tick.
    apply_fault(&mut t.mn.net, FaultKind::LinkRestore(link));
    assert!(t.mn.goals.retry(ids[0]));
    let run = cl.run_until_converged(&mut t.mn, 6);
    assert!(run.converged);
    assert_eq!(t.mn.goals.status(ids[0]), Some(GoalStatus::Active));
    assert!(t.probe_pair(0));
}

#[test]
fn push_mode_flow_reports_surface_as_counter_delta_events() {
    let (mut t, mut cl, _ids) = looped_chain(4, 2);
    assert!(cl.run_until_converged(&mut t.mn, 10).converged);

    // The repair tick subscribed the path devices to the goals' flow tags.
    // A faulty tick's telemetry polls give the agents a chance to push:
    // the watched counters moved (health probes), so unsolicited reports
    // ride back alongside the poll replies...
    apply_fault(
        &mut t.mn.net,
        FaultKind::Misconfigure(Misconfiguration::FlushPolicyRouting { device: t.core[1] }),
    );
    apply_fault(
        &mut t.mn.net,
        FaultKind::Misconfigure(Misconfiguration::ClearMplsState { device: t.core[1] }),
    );
    let faulty = cl.tick(&mut t.mn);
    assert!(!faulty.degraded.is_empty());

    // ...and surface as CounterDelta events on the next tick's stream —
    // which stays management-silent: the pushes were already on the wire.
    let next = cl.tick(&mut t.mn);
    assert!(
        next.counter_deltas > 0,
        "pushed flow reports become events: {next:#?}"
    );
    assert_eq!(next.nm_sent, 0, "draining pushed reports costs nothing");
}
