//! Property-based tests on the substrate's core data structures and
//! invariants: wire-format round-trips, checksum detection, longest-prefix
//! match consistency, path-finder sanity — and the pre-flight verifier's
//! soundness on honestly-planned goal fleets (random fleet shapes on the
//! fan-out chain and the multipath mesh must produce zero violations).

use conman::netsim::ether::{EtherType, EthernetFrame};
use conman::netsim::gre::GreHeader;
use conman::netsim::ipv4::{internet_checksum, Ipv4Cidr, Ipv4Header, Ipv4Proto};
use conman::netsim::mac::MacAddr;
use conman::netsim::mpls::{decode_stack, encode_stack, Label, LabelStackEntry};
use conman::netsim::route::{Route, RouteTable, RouteTarget};
use conman::netsim::udp::UdpHeader;
use proptest::prelude::*;
use std::net::Ipv4Addr;

proptest! {
    #[test]
    fn ethernet_roundtrip(dst in any::<[u8; 6]>(), src in any::<[u8; 6]>(), ethertype in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let frame = EthernetFrame::new(MacAddr::new(dst), MacAddr::new(src), EtherType::from_u16(ethertype), payload);
        let decoded = EthernetFrame::decode(&frame.encode()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn ipv4_roundtrip_and_checksum(src in any::<u32>(), dst in any::<u32>(), proto in any::<u8>(), ttl in 1u8..255, payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut header = Ipv4Header::new(Ipv4Addr::from(src), Ipv4Addr::from(dst), Ipv4Proto::from_u8(proto));
        header.ttl = ttl;
        let packet = header.encode_packet(&payload);
        // The encoded header always checksums to zero.
        prop_assert_eq!(internet_checksum(&packet[..20]), 0);
        let (decoded, body) = Ipv4Header::decode_packet(&packet).unwrap();
        prop_assert_eq!(decoded, header);
        prop_assert_eq!(body, payload);
    }

    #[test]
    fn ipv4_corruption_is_detected(src in any::<u32>(), dst in any::<u32>(), flip_bit in 0usize..(20 * 8), payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let header = Ipv4Header::new(Ipv4Addr::from(src), Ipv4Addr::from(dst), Ipv4Proto::Udp);
        let mut packet = header.encode_packet(&payload);
        packet[flip_bit / 8] ^= 1 << (flip_bit % 8);
        // Either decoding fails (checksum / version / length) or the decoded
        // header differs from the original — corruption never passes silently
        // as the same header.
        if let Ok((decoded, _)) = Ipv4Header::decode_packet(&packet) { prop_assert_ne!(decoded, header) }
    }

    #[test]
    fn gre_roundtrip(key in proptest::option::of(any::<u32>()), seq in proptest::option::of(any::<u32>()), csum in any::<bool>(), payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let header = GreHeader { protocol: 0x0800, key, sequence: seq, checksum_present: csum };
        let packet = header.encode_packet(&payload);
        let (decoded, body) = GreHeader::decode_packet(&packet).unwrap();
        prop_assert_eq!(decoded, header);
        prop_assert_eq!(body, payload);
    }

    #[test]
    fn udp_roundtrip(sp in any::<u16>(), dp in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let datagram = UdpHeader::new(sp, dp).encode_datagram(&payload);
        let (h, body) = UdpHeader::decode_datagram(&datagram).unwrap();
        prop_assert_eq!(h.src_port, sp);
        prop_assert_eq!(h.dst_port, dp);
        prop_assert_eq!(body, payload);
    }

    #[test]
    fn mpls_stack_roundtrip(labels in proptest::collection::vec(0u32..Label::MAX, 1..6), payload in proptest::collection::vec(any::<u8>(), 0..128)) {
        let n = labels.len();
        let stack: Vec<LabelStackEntry> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| LabelStackEntry::new(Label::new(*l).unwrap(), i == n - 1))
            .collect();
        let bytes = encode_stack(&stack, &payload);
        let (decoded, body) = decode_stack(&bytes).unwrap();
        prop_assert_eq!(decoded, stack);
        prop_assert_eq!(body, payload);
    }

    #[test]
    fn lpm_always_returns_the_longest_matching_prefix(
        prefixes in proptest::collection::vec((any::<u32>(), 0u8..=32), 1..20),
        probe in any::<u32>(),
    ) {
        let mut table = RouteTable::new();
        for (i, (addr, len)) in prefixes.iter().enumerate() {
            table.add(Route {
                dest: Ipv4Cidr::new(Ipv4Addr::from(*addr), *len),
                target: RouteTarget::Port { port: i as u32, via: None },
            });
        }
        let probe = Ipv4Addr::from(probe);
        let best = table.lookup(probe);
        // Reference implementation: scan everything.
        let expected_len = prefixes
            .iter()
            .map(|(addr, len)| Ipv4Cidr::new(Ipv4Addr::from(*addr), *len))
            .filter(|c| c.contains(probe))
            .map(|c| c.prefix_len)
            .max();
        match (best, expected_len) {
            (Some(route), Some(len)) => prop_assert_eq!(route.dest.prefix_len, len),
            (None, None) => {}
            (got, want) => prop_assert!(false, "lookup mismatch: got {:?}, want prefix length {:?}", got, want),
        }
    }

    #[test]
    fn cidr_contains_is_consistent_with_network(addr in any::<u32>(), len in 0u8..=32, probe in any::<u32>()) {
        let cidr = Ipv4Cidr::new(Ipv4Addr::from(addr), len);
        let probe_addr = Ipv4Addr::from(probe);
        let by_mask = (probe & cidr.mask()) == (addr & cidr.mask());
        prop_assert_eq!(cidr.contains(probe_addr), by_mask);
        prop_assert!(cidr.contains(cidr.network()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The path finder never produces a path that revisits a module or whose
    /// encapsulation bookkeeping is inconsistent, on chains of any small size.
    #[test]
    fn pathfinder_paths_are_always_sane(n in 2usize..5) {
        let mut t = conman::modules::managed_chain(n);
        t.discover();
        let goal = t.vpn_goal();
        let paths = t.mn.nm.find_paths(&goal);
        prop_assert!(!paths.is_empty());
        for p in &paths {
            // No module appears twice.
            let mut seen = std::collections::BTreeSet::new();
            for s in &p.steps {
                prop_assert!(seen.insert(s.module.clone()), "module revisited in {:?}", p.technology_label());
            }
            // Pushes and pops balance out: as many encapsulations as
            // decapsulations plus the customer's own headers handled at the
            // two edges.
            let pushes = p.steps.iter().filter(|s| s.switch.encapsulates()).count();
            let pops = p.steps.iter().filter(|s| s.switch.decapsulates()).count();
            prop_assert_eq!(pushes, pops, "unbalanced encapsulation in {}", p.technology_label());
            // Paths start at the goal's ingress and end at its egress.
            prop_assert_eq!(&p.steps.first().unwrap().module, &goal.from);
            prop_assert_eq!(&p.steps.last().unwrap().module, &goal.to);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Soundness of the pre-flight batch verifier: a fleet planned the way
    /// the batched reconcile pass plans it — each goal's pipe block
    /// consumed before the next goal plans — produces **zero** violations,
    /// for any fleet size on any small fan-out chain.  (The verifier's
    /// completeness — that every violation variant actually fires on bad
    /// input — is covered by conman-analyze's unit tests.)
    #[test]
    fn planned_chain_fleets_pass_the_preflight_verifier(n in 3usize..6, goals in 1usize..5) {
        use conman::core::nm::script;
        let mut t = conman::modules::managed_fanout_chain(n, goals);
        t.discover();
        t.mn.goals.limits = conman_bench::diagnosis::chain_limits(n);
        let mut plans = Vec::new();
        for k in 0..goals {
            let id = t.mn.submit(t.fanout_goal(k));
            let plan = t.mn.plan_goal(id).expect("a path exists for every fan-out pair");
            // Consume the block so the next plan gets a disjoint base, the
            // way reconcile() numbers a batch.
            t.mn.goals.take_pipe_block(script::slot_count(&plan.path));
            plans.push(plan);
        }
        let violations = t.mn.verify_plans(&plans);
        prop_assert!(violations.is_empty(), "chain fleet must verify clean: {violations:?}");
    }

    /// The same soundness property on the 2×k multipath mesh, whose longer
    /// paths and genuine alternatives exercise the link/exclusion model.
    #[test]
    fn planned_mesh_fleets_pass_the_preflight_verifier(k in 2usize..4, goals in 1usize..4) {
        use conman::core::nm::script;
        use mgmt_channel::OutOfBandChannel;
        let mut t: conman::modules::ManagedMesh<OutOfBandChannel> =
            conman::modules::managed_mesh_fanout(k, goals);
        t.discover();
        t.mn.goals.limits = conman_bench::control_loop::mesh_limits(k);
        let mut plans = Vec::new();
        for g in 0..goals {
            let id = t.mn.submit(t.fanout_goal(g));
            let plan = t.mn.plan_goal(id).expect("a path exists for every fan-out pair");
            t.mn.goals.take_pipe_block(script::slot_count(&plan.path));
            plans.push(plan);
        }
        let violations = t.mn.verify_plans(&plans);
        prop_assert!(violations.is_empty(), "mesh fleet must verify clean: {violations:?}");
    }
}
