//! Flight-recorder integration tests: journal determinism on a seeded
//! scenario, post-mortem reconstruction from the dump alone, the telemetry
//! history store filling from the loop's flow push reports — and every
//! journal produced here passing the `conman-analyze` conformance checker.

use conman::core::runtime::{ControlLoop, GoalEndpoints, LoopConfig};
use conman::modules::{managed_fanout_chain, ManagedChain};
use conman_bench::{assert_journal_conforms, recorded_mesh_link_cut};
use conman_diagnose::AutonomicClient;
use conman_obs::{Postmortem, Recorder};
use mgmt_channel::OutOfBandChannel;

type Chain = ManagedChain<OutOfBandChannel>;

/// The tentpole determinism guarantee: the journal is timestamped with
/// simulated time only, so two runs of the same seeded scenario produce
/// byte-identical journal dumps.
#[test]
fn same_seeded_scenario_yields_byte_identical_journals() {
    let first = recorded_mesh_link_cut(2, 3);
    let second = recorded_mesh_link_cut(2, 3);
    assert!(first.converged && second.converged);
    assert!(!first.journal.is_empty() && first.journal != "[]");
    assert_eq!(
        first.journal, second.journal,
        "the trace journal must be deterministic across identical runs"
    );
    assert_journal_conforms(&first.journal, "recorded mesh link-cut journal");
}

/// The acceptance scenario: from the journal dump alone — no live state,
/// no re-run — the post-mortem must name the blamed link, show the repair
/// was a single pass, and list every staged device.
#[test]
fn postmortem_reconstructs_the_link_cut_story_from_the_dump_alone() {
    let rec = recorded_mesh_link_cut(2, 3);
    assert!(rec.converged, "ground truth: the run converged");
    assert_eq!(rec.repair_passes, 1, "ground truth: one-pass reroute");

    let pm = Postmortem::from_json(&rec.journal).expect("dump parses");

    // The blamed link is the cut link.
    assert!(
        pm.blamed_links.contains(&rec.cut_link),
        "post-mortem blames {:?}, journal says {:?}",
        rec.cut_link,
        pm.blamed_links
    );
    // The reroute took exactly one effective repair pass.
    assert_eq!(
        pm.effective_passes(),
        1,
        "post-mortem must reconstruct the one-pass reroute: {:?}",
        pm.repair_passes
    );
    // Every device of every repaired path shows up as staged in the dump
    // (the repair batch staged each of them exactly once).
    for d in &rec.new_path_devices {
        assert!(
            pm.staged_devices.contains(d),
            "device {d} is on a repaired path but the dump never staged it"
        );
    }
    // Goals degraded and were verified healthy again.
    assert!(!pm.degraded_goals.is_empty());
    assert!(!pm.verified_goals.is_empty());
}

/// The history store fills from the loop's `SubscribeFlows` push reports:
/// agents push unsolicited flow deltas whenever a management exchange
/// finds a watched goal's counters moved, so the fault-handling ticks
/// (diagnosis polls, repair transactions) leave a queryable per-goal
/// sample series behind.
#[test]
fn flow_push_reports_populate_the_history_store() {
    use conman::netsim::fault::{apply_fault, FaultKind, Misconfiguration};

    let goals = 2usize;
    let mut t: Chain = managed_fanout_chain(4, goals);
    t.discover();
    t.mn.set_recorder(Recorder::new());
    let mut cl = ControlLoop::new(&t.mn, LoopConfig::default())
        .with_client(Box::new(AutonomicClient::new(2)));
    for k in 0..goals {
        let (src, dst, dst_ip) = t.fanout_probe(k);
        let id = t.mn.submit(t.fanout_goal(k));
        cl.track(id, GoalEndpoints { src, dst, dst_ip });
    }
    let setup = cl.run_until_converged(&mut t.mn, 16);
    assert!(setup.converged);

    // Fault the mid-chain router so the loop's diagnosis and repair
    // exchanges give every agent the chance to push its flow deltas.
    let faulted = t.core[1];
    apply_fault(
        &mut t.mn.net,
        FaultKind::Misconfigure(Misconfiguration::ClearMplsState { device: faulted }),
    );
    apply_fault(
        &mut t.mn.net,
        FaultKind::Misconfigure(Misconfiguration::FlushPolicyRouting { device: faulted }),
    );
    let run = cl.run_until_converged(&mut t.mn, 12);
    assert!(run.converged, "the loop must repair the fleet");

    // The full-run journal (setup, fault, repair) must conform to the
    // loop's span protocol.
    assert_journal_conforms(
        &t.mn.recorder.journal_json(),
        "chain fault-and-repair journal",
    );

    let series =
        t.mn.recorder
            .with_history(|h| h.keys().collect::<Vec<_>>())
            .expect("recorder is enabled");
    assert!(
        !series.is_empty(),
        "push reports must land in the history store"
    );
    // Each series is queryable: windowed statistics answer without
    // re-polling any device.
    let snap = t.mn.recorder.snapshot();
    assert_eq!(snap.history.len(), series.len());
    for s in &snap.history {
        assert!(s.samples > 0);
        assert!(s.drops_mean.is_some(), "statistics answer from the window");
    }
    // The message tap counted wire categories during the run.
    assert!(
        t.mn.recorder.counter("msg.sent.Telemetry") > 0
            || t.mn.recorder.counter("msg.sent.Command") > 0,
        "the channel tap must have counted NM messages"
    );
    assert!(t.mn.recorder.counter("flow.push_reports") > 0);
}

/// A disabled recorder journals nothing and snapshots empty — the no-op
/// hot path the overhead row in `BENCH_obs.json` measures.
#[test]
fn disabled_recorder_stays_empty_through_a_full_run() {
    let mut t: Chain = managed_fanout_chain(3, 1);
    t.discover();
    let mut cl = ControlLoop::new(&t.mn, LoopConfig::default())
        .with_client(Box::new(AutonomicClient::new(2)));
    let (src, dst, dst_ip) = t.fanout_probe(0);
    let id = t.mn.submit(t.fanout_goal(0));
    cl.track(id, GoalEndpoints { src, dst, dst_ip });
    let setup = cl.run_until_converged(&mut t.mn, 16);
    assert!(setup.converged);
    assert!(!t.mn.recorder.is_enabled());
    assert_eq!(t.mn.recorder.journal_len(), 0);
    assert_eq!(t.mn.recorder.journal_json(), "[]");
    let snap = t.mn.recorder.snapshot();
    assert_eq!(snap.journal_events, 0);
    assert!(snap.history.is_empty());
}
