//! Reproduction of §III-C.1: on the Figure 4 testbed the NM's path finder
//! was expected to produce 3 paths (IP-IP, GRE-IP, MPLS) but enumerated 9
//! (the extra six being combinations over MPLS segments).

use conman_modules::managed_chain;

#[test]
fn figure4_pathfinder_enumerates_exactly_nine_paths() {
    let mut t = managed_chain(3);
    t.discover();
    assert_eq!(t.mn.nm.device_count(), 3, "routers A, B, C announce");

    let goal = t.vpn_goal();
    let paths = t.mn.nm.find_paths(&goal);
    let mut labels: Vec<String> = paths.iter().map(|p| p.technology_label()).collect();
    labels.sort();
    assert_eq!(
        paths.len(),
        9,
        "the paper's NM generated nine paths, got: {labels:?}"
    );

    // The three "expected" paths...
    assert!(labels.contains(&"IP-IP".to_string()));
    assert!(labels.contains(&"GRE-IP".to_string()));
    assert!(labels.contains(&"MPLS".to_string()));
    // ...and the six extra combinations over MPLS (full-path or one segment).
    assert_eq!(
        labels.iter().filter(|l| l.contains("over MPLS")).count(),
        6,
        "six additional MPLS-underlay combinations"
    );
    assert_eq!(labels.iter().filter(|l| *l == "IP-IP over MPLS").count(), 3);
    assert_eq!(
        labels.iter().filter(|l| *l == "GRE-IP over MPLS").count(),
        3
    );
}

#[test]
fn nm_prefers_the_mpls_path() {
    let mut t = managed_chain(3);
    t.discover();
    let goal = t.vpn_goal();
    let paths = t.mn.nm.find_paths(&goal);
    let chosen = t.mn.nm.choose_path(&paths).expect("a path is chosen");
    // §III-C.1: the MPLS-based path and the IP-IP tunnel instantiate the
    // fewest pipes; the NM prefers MPLS because of its forwarding-bandwidth
    // advertisement.
    assert_eq!(chosen.technology_label(), "MPLS");
    let ipip = paths
        .iter()
        .find(|p| p.technology_label() == "IP-IP")
        .unwrap();
    assert_eq!(chosen.pipe_count(), ipip.pipe_count());
    let gre = paths
        .iter()
        .find(|p| p.technology_label() == "GRE-IP")
        .unwrap();
    assert!(gre.pipe_count() > chosen.pipe_count());
}
