//! End-to-end VPN configuration on the Figure 4 testbed: the NM executes the
//! CONMan scripts for the GRE-IP, MPLS and IP-IP paths and customer traffic
//! then flows between the two sites with the expected encapsulation — the
//! same check the authors performed on their Linux testbed.

use conman_modules::managed_chain;

fn configure(label: &str) -> (bool, bool, Vec<String>) {
    let mut t = managed_chain(3);
    t.discover();
    let goal = t.vpn_goal();
    let paths = t.mn.nm.find_paths(&goal);
    let path = paths
        .iter()
        .find(|p| p.technology_label() == label)
        .unwrap_or_else(|| panic!("path {label} exists"))
        .clone();
    let scripts = t.mn.execute_path(&path, &goal);
    assert!(!scripts.scripts.is_empty());
    let (fwd, trace) = t.send_site1_to_site2(b"site1->site2");
    let (rev, _) = t.send_site2_to_site1(b"site2->site1");
    (fwd, rev, trace)
}

#[test]
fn gre_path_carries_customer_traffic_with_gre_encapsulation() {
    let (fwd, rev, trace) = configure("GRE-IP");
    assert!(fwd, "site1 -> site2 delivery over the GRE tunnel");
    assert!(rev, "site2 -> site1 delivery over the GRE tunnel");
    // Frames leaving the ingress router towards the core must be
    // ETH / outer IP / GRE / customer IP.
    assert!(
        trace
            .iter()
            .any(|p| p.contains("GRE(key=") && p.contains("10.0.2.5")),
        "expected GRE encapsulation on the core link, saw: {trace:?}"
    );
}

#[test]
fn mpls_path_carries_customer_traffic_with_label_encapsulation() {
    let (fwd, rev, trace) = configure("MPLS");
    assert!(fwd, "site1 -> site2 delivery over the MPLS LSP");
    assert!(rev, "site2 -> site1 delivery over the MPLS LSP");
    assert!(
        trace.iter().any(|p| p.contains("MPLS(")),
        "expected MPLS labels on the core link, saw: {trace:?}"
    );
}

#[test]
fn ipip_path_carries_customer_traffic() {
    let (fwd, rev, trace) = configure("IP-IP");
    assert!(fwd, "site1 -> site2 delivery over the IP-IP tunnel");
    assert!(rev, "site2 -> site1 delivery over the IP-IP tunnel");
    assert!(
        trace
            .iter()
            .any(|p| p.contains("IP(204.9.168.1->204.9.169.1 IPIP)")),
        "expected IP-IP encapsulation on the core link, saw: {trace:?}"
    );
}

#[test]
fn without_configuration_no_customer_traffic_flows() {
    let mut t = managed_chain(3);
    t.discover();
    let (fwd, _) = t.send_site1_to_site2(b"should not arrive");
    assert!(
        !fwd,
        "the ISP does not carry customer traffic before the VPN is configured"
    );
}

#[test]
fn vlan_tunnel_carries_customer_frames() {
    let mut t = conman_modules::managed_vlan_chain(3);
    t.discover();
    let goal = t.vlan_goal();
    let paths = t.mn.nm.find_paths(&goal);
    assert!(
        !paths.is_empty(),
        "a VLAN path exists across the provider switches"
    );
    let path = paths
        .iter()
        .find(|p| p.technology_label().contains("VLAN"))
        .expect("VLAN path")
        .clone();
    t.mn.execute_path(&path, &goal);
    let (delivered, trace) = t.send_customer_frame(b"layer2 payload");
    assert!(delivered, "customer frame crosses the provider VLAN tunnel");
    assert!(
        trace.iter().any(|p| p.contains("VLAN(22)")),
        "expected the provider tag on the trunk, saw: {trace:?}"
    );
}
