//! Satellite coverage: `mgmt_channel::counters::CounterBoard` accounting
//! (category breakdown, reset, zero-default `get`), `FaultPlan` determinism
//! (same seed ⇒ identical fault timeline), and the periodic telemetry
//! collector end to end.

use conman::diagnose::TelemetryCollector;
use conman::mgmt_channel::{CounterBoard, MessageCategory};
use conman::modules::managed_chain;
use conman::netsim::clock::{SimDuration, SimTime};
use conman::netsim::device::DeviceId;
use conman::netsim::fault::{FaultKind, FaultPlan};
use conman::netsim::link::LinkId;

#[test]
fn counter_board_breaks_down_by_category() {
    let mut board = CounterBoard::new();
    let nm = DeviceId::from_raw(1);
    let dev = DeviceId::from_raw(2);
    board.record_sent(nm, MessageCategory::Command, 100);
    board.record_sent(nm, MessageCategory::Telemetry, 50);
    board.record_sent(nm, MessageCategory::Telemetry, 50);
    board.record_received(dev, MessageCategory::Telemetry, 50);
    board.record_received(nm, MessageCategory::Response, 80);

    let c = board.get(nm);
    assert_eq!(c.sent, 3);
    assert_eq!(c.bytes_sent, 200);
    assert_eq!(c.sent_by_category[&MessageCategory::Command], 1);
    assert_eq!(c.sent_by_category[&MessageCategory::Telemetry], 2);
    assert!(!c
        .sent_by_category
        .contains_key(&MessageCategory::ConveyMessage));
    assert_eq!(c.received_by_category[&MessageCategory::Response], 1);
    assert_eq!(
        board.get(dev).received_by_category[&MessageCategory::Telemetry],
        1
    );
    assert_eq!(board.total_sent(), 3);
    assert_eq!(board.total_received(), 2);
}

#[test]
fn counter_board_get_defaults_to_zero_and_reset_clears() {
    let mut board = CounterBoard::new();
    // A device that never used the channel reads as all-zero.
    let stranger = DeviceId::from_raw(99);
    let c = board.get(stranger);
    assert_eq!(c.sent, 0);
    assert_eq!(c.received, 0);
    assert_eq!(c.bytes_sent, 0);
    assert_eq!(c.bytes_received, 0);
    assert!(c.sent_by_category.is_empty());
    assert!(c.received_by_category.is_empty());

    board.record_sent(stranger, MessageCategory::Announcement, 10);
    assert_eq!(board.get(stranger).sent, 1);
    board.reset();
    assert_eq!(board.get(stranger).sent, 0);
    assert_eq!(board.total_sent(), 0);
    assert_eq!(board.total_received(), 0);
}

#[test]
fn fault_plans_are_deterministic_functions_of_the_seed() {
    let links: Vec<LinkId> = (0..5).map(LinkId).collect();
    let horizon = SimDuration::from_secs(2);
    let a = FaultPlan::random_flaps(0xC0FFEE, &links, SimTime::ZERO, horizon, 16);
    let b = FaultPlan::random_flaps(0xC0FFEE, &links, SimTime::ZERO, horizon, 16);
    assert_eq!(a, b, "same seed must produce the identical timeline");
    assert_eq!(a.len(), 32, "each flap is a cut plus a restore");

    let c = FaultPlan::random_flaps(0xC0FFEF, &links, SimTime::ZERO, horizon, 16);
    assert_ne!(a, c, "different seeds diverge");

    // The timeline is sorted and every cut precedes its restore.
    let times: Vec<u64> = a.events().iter().map(|e| e.at.as_nanos()).collect();
    let mut sorted = times.clone();
    sorted.sort_unstable();
    assert_eq!(times, sorted);
    let cuts = a
        .events()
        .iter()
        .filter(|e| matches!(e.kind, FaultKind::LinkCut(_)))
        .count();
    assert_eq!(cuts, 16);
}

#[test]
fn periodic_collection_gathers_rounds_on_the_simulated_clock() {
    let mut t = managed_chain(3);
    t.discover();
    let goal = t.vpn_goal();
    let paths = t.mn.nm.find_paths(&goal);
    let path = t.mn.nm.choose_path(&paths).unwrap().clone();
    t.mn.execute_path(&path, &goal);

    let period = SimDuration::from_millis(100);
    let mut collector = TelemetryCollector::new(path.devices(), period).with_max_rounds(4);
    assert!(collector.tick(&mut t.mn), "round 0 is due immediately");
    assert!(
        !collector.tick(&mut t.mn),
        "not due again until the period passes"
    );
    for _ in 0..6 {
        t.mn.net.run_for(period);
        assert!(collector.tick(&mut t.mn));
    }
    assert_eq!(collector.rounds.len(), 4, "history is bounded");
    let latest = collector.latest().unwrap();
    let previous = collector.previous().unwrap();
    assert!(
        latest.at > previous.at,
        "rounds advance with the simulated clock"
    );
    // Every managed device on the path answered with one snapshot per module.
    for d in collector.devices() {
        let snaps = &latest.snapshots[d];
        assert!(!snaps.is_empty());
    }
    // Telemetry is accounted in its own category, leaving Table VI's
    // configuration counts untouched.
    let c = t.mn.nm_counters();
    assert!(c.sent_by_category[&MessageCategory::Telemetry] > 0);
}
