//! Equivalence suite for the raw-speed reconcile engine.
//!
//! The parallel planner (`reconcile`) and the sequential oracle
//! (`reconcile_sequential`) must be *observably identical*: same
//! `ReconcileReport`s, byte-identical trace journals, same NM wire-message
//! counts — on fresh chain and mesh fleets, under a mid-batch device
//! crash, and when commit-order conflicts demote a goal to the strict
//! fallback transaction.  The zero-copy binary codec must preserve the
//! same equivalence between same-codec twins, and message *counts* across
//! codecs.  Random fleets are covered by proptests that also feed the
//! planned batch through the static pre-flight verifier
//! (`verify_plans`, i.e. `conman-analyze`'s `verify_batch`).
//!
//! Every scenario runs twin testbeds built identically, so any divergence
//! between the engines shows up as a journal or report diff.

use conman::core::nm::{script, ConnectivityGoal};
use conman::core::runtime::{ReconcileReport, TxnEvent};
use conman::core::WireCodec;
use conman::modules::{
    managed_chain, managed_fanout_chain, managed_mesh_fanout, ManagedChain, ManagedMesh,
};
use conman_bench::assert_journal_conforms;
use conman_bench::control_loop::mesh_limits;
use conman_bench::diagnosis::chain_limits;
use conman_obs::Recorder;
use mgmt_channel::OutOfBandChannel;
use proptest::prelude::*;

type Chain = ManagedChain<OutOfBandChannel>;
type Mesh = ManagedMesh<OutOfBandChannel>;

/// A fan-out chain twin: `goals` submitted, limits set, recorder attached.
fn chain_twin(n: usize, goals: usize, codec: WireCodec) -> Chain {
    let mut t = managed_fanout_chain(n, goals);
    t.discover();
    t.mn.goals.limits = chain_limits(n);
    t.mn.codec = codec;
    for k in 0..goals {
        let goal = t.fanout_goal(k);
        t.mn.submit(goal);
    }
    t.mn.set_recorder(Recorder::new());
    t
}

/// A multipath-mesh twin, same shape.
fn mesh_twin(k: usize, goals: usize, codec: WireCodec) -> Mesh {
    let mut t = managed_mesh_fanout(k, goals);
    t.discover();
    t.mn.goals.limits = mesh_limits(k);
    t.mn.codec = codec;
    for g in 0..goals {
        let goal = t.fanout_goal(g);
        t.mn.submit(goal);
    }
    t.mn.set_recorder(Recorder::new());
    t
}

/// Everything an engine run exposes to the outside world.
struct Observed {
    report: String,
    journal: String,
    nm_sent: u64,
    nm_received: u64,
}

fn observe(report: &ReconcileReport, journal: String) -> Observed {
    Observed {
        report: serde_json::to_string(report).expect("report serializes"),
        journal,
        nm_sent: report.nm_sent,
        nm_received: report.nm_received,
    }
}

/// Assert the parallel and sequential observations are identical, and the
/// (shared) journal conforms.
fn assert_twins_equal(par: &Observed, seq: &Observed, what: &str) {
    assert_eq!(
        par.report, seq.report,
        "{what}: ReconcileReports must be identical"
    );
    assert_eq!(
        par.journal, seq.journal,
        "{what}: journals must be byte-identical"
    );
    assert_eq!(
        (par.nm_sent, par.nm_received),
        (seq.nm_sent, seq.nm_received),
        "{what}: NM wire-message counts must match"
    );
    assert_journal_conforms(&par.journal, what);
}

#[test]
fn parallel_equals_sequential_on_a_fresh_chain_fleet() {
    for codec in [WireCodec::Json, WireCodec::Binary] {
        let mut a = chain_twin(4, 3, codec);
        let mut b = chain_twin(4, 3, codec);
        let ra = a.mn.reconcile();
        let rb = b.mn.reconcile_sequential();
        assert!(ra.converged(), "parallel pass converges ({codec:?})");
        assert!(rb.converged(), "sequential pass converges ({codec:?})");
        let par = observe(&ra, a.mn.recorder.journal_json());
        let seq = observe(&rb, b.mn.recorder.journal_json());
        assert_twins_equal(&par, &seq, &format!("fresh chain fleet ({codec:?})"));
        assert!(par.journal.len() > 2, "the pass journals real events");
        // A second pass is a no-op on both engines.
        let ra2 = a.mn.reconcile();
        let rb2 = b.mn.reconcile_sequential();
        assert_eq!(ra2.transactions, 0);
        assert_eq!(
            serde_json::to_string(&ra2).unwrap(),
            serde_json::to_string(&rb2).unwrap(),
            "idempotent passes must also match"
        );
    }
}

#[test]
fn parallel_equals_sequential_on_a_multipath_mesh_fleet() {
    for codec in [WireCodec::Json, WireCodec::Binary] {
        let mut a = mesh_twin(3, 3, codec);
        let mut b = mesh_twin(3, 3, codec);
        let ra = a.mn.reconcile();
        let rb = b.mn.reconcile_sequential();
        assert!(ra.converged(), "parallel pass converges ({codec:?})");
        let par = observe(&ra, a.mn.recorder.journal_json());
        let seq = observe(&rb, b.mn.recorder.journal_json());
        assert_twins_equal(&par, &seq, &format!("mesh fleet ({codec:?})"));
    }
}

/// Crash the middle router between staging and its commit, identically on
/// both twins: the batch's per-goal rollback and restore bookkeeping must
/// behave the same under both planning engines.
fn install_mid_batch_crash(t: &mut Chain) {
    let b = t.core[1];
    t.mn.txn_hook = Some(Box::new(move |event, net| {
        if let TxnEvent::BeforeCommit { device, .. } = event {
            if *device == b {
                net.set_device_up(b, false);
            }
        }
    }));
}

#[test]
fn parallel_equals_sequential_under_a_mid_batch_device_crash() {
    let mut a = chain_twin(3, 2, WireCodec::Binary);
    let mut b = chain_twin(3, 2, WireCodec::Binary);
    install_mid_batch_crash(&mut a);
    install_mid_batch_crash(&mut b);
    let ra = a.mn.reconcile();
    let rb = b.mn.reconcile_sequential();
    assert!(
        !ra.converged(),
        "the crash must actually fail the pass: {ra:#?}"
    );
    let par = observe(&ra, a.mn.recorder.journal_json());
    let seq = observe(&rb, b.mn.recorder.journal_json());
    assert_twins_equal(&par, &seq, "mid-batch device crash");
}

/// The forward goal's mirror image: same interfaces and classes, traversed
/// in the opposite direction — the construction that cannot share the
/// batch's single commit order and demotes one goal to the strict fallback.
fn reversed(goal: &ConnectivityGoal) -> ConnectivityGoal {
    let mut g = goal.clone();
    std::mem::swap(&mut g.from, &mut g.to);
    std::mem::swap(&mut g.src_class, &mut g.dst_class);
    std::mem::swap(&mut g.src_gateway, &mut g.dst_gateway);
    g
}

fn opposite_direction_twin(codec: WireCodec) -> Chain {
    let mut t = managed_chain(3);
    t.discover();
    t.mn.codec = codec;
    let fwd = t.vpn_goal();
    let rev = reversed(&fwd);
    t.mn.submit(fwd);
    t.mn.submit(rev);
    t.mn.set_recorder(Recorder::new());
    t
}

#[test]
fn parallel_equals_sequential_when_commit_order_falls_back() {
    let mut a = opposite_direction_twin(WireCodec::Binary);
    let mut b = opposite_direction_twin(WireCodec::Binary);
    let ra = a.mn.reconcile();
    let rb = b.mn.reconcile_sequential();
    let par = observe(&ra, a.mn.recorder.journal_json());
    let seq = observe(&rb, b.mn.recorder.journal_json());
    // The fallback goal runs as its own strict transaction: its per-device
    // stage events carry exactly one segment, unlike the batch's coalesced
    // stages.  This proves the scenario actually exercised the fallback.
    assert!(
        par.journal.contains("\"segments\":1"),
        "opposite-direction goals must demote one goal to a strict fallback: {}",
        par.journal
    );
    assert_twins_equal(&par, &seq, "commit-order fallback");
}

#[test]
fn binary_codec_matches_json_counts_and_end_state() {
    let mut json = chain_twin(4, 3, WireCodec::Json);
    let mut bin = chain_twin(4, 3, WireCodec::Binary);
    let rj = json.mn.reconcile();
    let rb = bin.mn.reconcile();
    assert!(rj.converged() && rb.converged());
    // The codec changes payload bytes, never message counts or outcomes:
    // the reports are identical across codecs.
    assert_eq!(
        serde_json::to_string(&rj).unwrap(),
        serde_json::to_string(&rb).unwrap(),
        "reports must be codec-independent"
    );
    // ...but the binary batches really are smaller on the wire.
    let jb = json.mn.recorder.counter("txn.encode_bytes");
    let bb = bin.mn.recorder.counter("txn.encode_bytes");
    assert!(
        bb * 2 < jb,
        "binary batch encoding must be less than half the JSON size: {bb} vs {jb}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random fan-out chain fleets: the parallel engine is byte-identical
    /// to the sequential oracle, the journal conforms, and the fleet's
    /// plans (identical under both engines, as the journal equality
    /// proves) pass the `verify_batch` pre-flight with zero violations.
    #[test]
    fn random_chain_fleets_plan_identically_and_verify_clean(n in 3usize..6, goals in 1usize..5) {
        let mut a = chain_twin(n, goals, WireCodec::Binary);
        let mut b = chain_twin(n, goals, WireCodec::Binary);
        let ra = a.mn.reconcile();
        let rb = b.mn.reconcile_sequential();
        prop_assert!(ra.converged(), "parallel pass converges: {ra:#?}");
        let par = observe(&ra, a.mn.recorder.journal_json());
        let seq = observe(&rb, b.mn.recorder.journal_json());
        prop_assert_eq!(&par.report, &seq.report, "reports diverged");
        prop_assert_eq!(&par.journal, &seq.journal, "journals diverged");
        assert_journal_conforms(&par.journal, "random chain fleet");
        // The same fleet, planned the way the pass plans it, verifies clean.
        let mut c = chain_twin(n, goals, WireCodec::Binary);
        let mut plans = Vec::new();
        for id in c.mn.goals.ids() {
            let plan = c.mn.plan_goal(id).expect("a path exists");
            c.mn.goals.take_pipe_block(script::slot_count(&plan.path));
            plans.push(plan);
        }
        let violations = c.mn.verify_plans(&plans);
        prop_assert!(violations.is_empty(), "planned fleet must verify clean: {violations:?}");
    }

    /// The same equivalence on random multipath-mesh fleets.
    #[test]
    fn random_mesh_fleets_plan_identically_and_verify_clean(k in 2usize..4, goals in 1usize..4) {
        let mut a = mesh_twin(k, goals, WireCodec::Binary);
        let mut b = mesh_twin(k, goals, WireCodec::Binary);
        let ra = a.mn.reconcile();
        let rb = b.mn.reconcile_sequential();
        prop_assert!(ra.converged(), "parallel pass converges: {ra:#?}");
        let par = observe(&ra, a.mn.recorder.journal_json());
        let seq = observe(&rb, b.mn.recorder.journal_json());
        prop_assert_eq!(&par.report, &seq.report, "reports diverged");
        prop_assert_eq!(&par.journal, &seq.journal, "journals diverged");
        assert_journal_conforms(&par.journal, "random mesh fleet");
        let mut c = mesh_twin(k, goals, WireCodec::Binary);
        let mut plans = Vec::new();
        for id in c.mn.goals.ids() {
            let plan = c.mn.plan_goal(id).expect("a path exists");
            c.mn.goals.take_pipe_block(script::slot_count(&plan.path));
            plans.push(plan);
        }
        let violations = c.mn.verify_plans(&plans);
        prop_assert!(violations.is_empty(), "planned fleet must verify clean: {violations:?}");
    }
}
