//! Reproduction of Table VI: management messages sent and received by the NM
//! while configuring the VPN over GRE, MPLS and VLAN paths, as a function of
//! the number of routers along the path (n).
//!
//! Paper expressions:  GRE  sent 3n+2, received 2n+2
//!                     MPLS sent 3n-2, received 2n-1
//!                     VLAN sent 3n-2, received 2n-1
//!
//! Sent counts commands plus relayed module-to-module messages; received
//! counts relayed messages plus module notifications (script results /
//! responses are excluded, as in the paper).

use conman_modules::{managed_chain, managed_vlan_chain};
use mgmt_channel::MessageCategory;

fn nm_config_counts<C: mgmt_channel::ManagementChannel>(
    mn: &conman_core::runtime::ManagedNetwork<C>,
) -> (u64, u64) {
    let c = mn.nm_counters();
    let sent = [
        MessageCategory::Command,
        MessageCategory::ConveyMessage,
        MessageCategory::FieldQuery,
    ]
    .iter()
    .map(|k| c.sent_by_category.get(k).copied().unwrap_or(0))
    .sum();
    let received = [
        MessageCategory::ConveyMessage,
        MessageCategory::FieldQuery,
        MessageCategory::Notification,
    ]
    .iter()
    .map(|k| c.received_by_category.get(k).copied().unwrap_or(0))
    .sum();
    (sent, received)
}

fn run_l3(n: usize, label: &str) -> (u64, u64) {
    let mut t = managed_chain(n);
    t.discover();
    let goal = t.vpn_goal();
    let paths = t.mn.nm.find_paths(&goal);
    let path = paths
        .iter()
        .find(|p| p.technology_label() == label)
        .unwrap_or_else(|| panic!("{label} path exists for n={n}"))
        .clone();
    // Count only the configuration phase, as the paper does.
    t.mn.reset_counters();
    t.mn.execute_path(&path, &goal);
    nm_config_counts(&t.mn)
}

fn run_vlan(n: usize) -> (u64, u64) {
    let mut t = managed_vlan_chain(n);
    t.discover();
    let goal = t.vlan_goal();
    let paths = t.mn.nm.find_paths(&goal);
    let path = paths.first().expect("VLAN path exists").clone();
    t.mn.reset_counters();
    t.mn.execute_path(&path, &goal);
    nm_config_counts(&t.mn)
}

#[test]
fn table6_gre_matches_the_papers_expressions() {
    for n in [3usize, 4, 6] {
        let (sent, received) = run_l3(n, "GRE-IP");
        assert_eq!(sent, (3 * n + 2) as u64, "GRE sent for n={n}");
        assert_eq!(received, (2 * n + 2) as u64, "GRE received for n={n}");
    }
}

#[test]
fn table6_mpls_matches_the_papers_expressions() {
    for n in [3usize, 4, 6] {
        let (sent, received) = run_l3(n, "MPLS");
        assert_eq!(sent, (3 * n - 2) as u64, "MPLS sent for n={n}");
        assert_eq!(received, (2 * n - 1) as u64, "MPLS received for n={n}");
    }
}

#[test]
fn table6_vlan_matches_the_papers_expressions() {
    for n in [3usize, 4, 6] {
        let (sent, received) = run_vlan(n);
        assert_eq!(sent, (3 * n - 2) as u64, "VLAN sent for n={n}");
        assert_eq!(received, (2 * n - 1) as u64, "VLAN received for n={n}");
    }
}

#[test]
fn larger_chains_still_carry_traffic_after_configuration() {
    // The scaling sweep is only meaningful if the configured path actually
    // works for larger n as well.
    for n in [4usize, 6] {
        let mut t = managed_chain(n);
        t.discover();
        let goal = t.vpn_goal();
        let paths = t.mn.nm.find_paths(&goal);
        let path = paths
            .iter()
            .find(|p| p.technology_label() == "GRE-IP")
            .unwrap()
            .clone();
        t.mn.execute_path(&path, &goal);
        let (fwd, _) = t.send_site1_to_site2(b"scaled");
        let (rev, _) = t.send_site2_to_site1(b"scaled-back");
        assert!(fwd && rev, "GRE VPN works across {n} routers");
    }
}
