//! Fault-scenario integration tests for the `conman-diagnose` subsystem:
//! inject a fault with `netsim::fault`, let the `Diagnoser` localise it from
//! counter deltas along the configured module path, and (where the topology
//! permits) let the `Healer` reconfigure an alternative path and verify the
//! repair end to end.

use conman::core::ids::ModuleKind;
use conman::core::nm::{ConnectivityGoal, ModulePath};
use conman::diagnose::{Diagnoser, Healer, SuspectTarget};
use conman::modules::{managed_chain, managed_chain_with, ManagedChain};
use conman::netsim::clock::SimDuration;
use conman::netsim::fault::{apply_fault, FaultInjector, FaultKind, FaultPlan, Misconfiguration};
use mgmt_channel::{InBandChannel, OutOfBandChannel};

/// Build a discovered chain and configure the path with `label`, asserting
/// it initially carries traffic.
fn configured(
    n: usize,
    label: &str,
) -> (ManagedChain<OutOfBandChannel>, ConnectivityGoal, ModulePath) {
    let mut t = managed_chain(n);
    t.discover();
    let goal = t.vpn_goal();
    let paths = t.mn.nm.find_paths(&goal);
    let path = paths
        .iter()
        .find(|p| p.technology_label() == label)
        .unwrap_or_else(|| panic!("{label} path exists"))
        .clone();
    t.mn.execute_path(&path, &goal);
    assert!(t.probe(), "the {label} path must work before the fault");
    (t, goal, path)
}

/// Scenario 1 — link cut.  A chain has no alternate physical route, so the
/// NM must localise the cut precisely and admit it cannot re-plan around it.
#[test]
fn link_cut_is_localised_and_correctly_declared_unrepairable() {
    let (mut t, goal, path) = configured(3, "GRE-IP");
    let link = t.core_link(0).expect("A–B core link");
    apply_fault(&mut t.mn.net, FaultKind::LinkCut(link));

    let mut probe = t.probe_fn();
    let report = Diagnoser::default().diagnose(&mut t.mn, &path, &mut probe);
    assert!(!report.healthy);
    assert_eq!(report.probes_delivered, 0);
    assert!(
        report.blames_link(t.core[0], t.core[1]),
        "the cut A–B link must be the suspect: {:#?}",
        report.suspects
    );
    match &report.prime_suspect().unwrap().target {
        SuspectTarget::Link { link: found, .. } => assert_eq!(*found, Some(link)),
        other => panic!("expected a link suspect, got {other:?}"),
    }

    // Healing is impossible on a chain: every path crosses the cut link.
    let outcome = Healer::default().heal(&mut t.mn, &goal, &path, &report, &mut probe);
    assert!(
        !outcome.healed(),
        "no alternate path exists across a cut chain"
    );
    assert_eq!(outcome.candidates, 0);
}

/// Scenario 2 — MPLS core dies (cross-connects flushed on the middle
/// router).  The NM localises the MPLS module and falls back to GRE-IP,
/// restoring end-to-end delivery: the ISSUE's flagship scenario.
#[test]
fn mpls_core_failure_heals_onto_gre_fallback() {
    let (mut t, goal, path) = configured(3, "MPLS");
    apply_fault(
        &mut t.mn.net,
        FaultKind::Misconfigure(Misconfiguration::ClearMplsState { device: t.core[1] }),
    );

    let mut probe = t.probe_fn();
    let report = Diagnoser::default().diagnose(&mut t.mn, &path, &mut probe);
    assert!(!report.healthy);
    let mpls_b = t.core_module(1, &ModuleKind::Mpls).unwrap();
    assert!(
        report.blames_module(&mpls_b),
        "router B's MPLS module must be the suspect: {:#?}",
        report.suspects
    );

    let outcome = Healer::default().heal(&mut t.mn, &goal, &path, &report, &mut probe);
    assert!(outcome.healed(), "healing must succeed: {outcome:#?}");
    let label = outcome.replacement_label.as_deref().unwrap();
    assert!(
        !label.contains("MPLS"),
        "the replacement must avoid the dead MPLS core, got {label}"
    );
    assert!(
        outcome.teardown_primitives > 0,
        "the failed path must be torn down"
    );
    // And the repair holds for ordinary traffic, both directions.
    let (fwd, _) = t.send_site1_to_site2(b"after-heal");
    let (rev, _) = t.send_site2_to_site1(b"after-heal-back");
    assert!(fwd && rev, "customer traffic must flow after self-healing");
}

/// Scenario 3 — GRE key misconfiguration at the egress router.  Counter
/// evidence (TunnelMismatch drops) pins the egress GRE module; healing
/// moves the VPN onto a path avoiding it.
#[test]
fn gre_key_misconfiguration_is_pinned_to_the_egress_module_and_healed() {
    let (mut t, goal, path) = configured(3, "GRE-IP");
    let egress = *t.core.last().unwrap();
    apply_fault(
        &mut t.mn.net,
        FaultKind::Misconfigure(Misconfiguration::CorruptGreKey {
            device: egress,
            delta: 7,
        }),
    );

    let mut probe = t.probe_fn();
    let report = Diagnoser::default().diagnose(&mut t.mn, &path, &mut probe);
    assert!(!report.healthy);
    let gre_c = t.core_module(2, &ModuleKind::Gre).unwrap();
    assert!(
        report.blames_module(&gre_c),
        "the egress GRE module must be the suspect: {:#?}",
        report.suspects
    );

    let outcome = Healer::default().heal(&mut t.mn, &goal, &path, &report, &mut probe);
    assert!(outcome.healed(), "healing must succeed: {outcome:#?}");
    assert!(
        !outcome
            .replacement_label
            .as_deref()
            .unwrap()
            .contains("GRE"),
        "the replacement must avoid the corrupted GRE module"
    );
    assert!(t.probe(), "traffic flows after the repair");
}

/// Scenario 4 — device crash.  The crashed router answers neither the data
/// plane nor the management channel; the diagnoser reports the device
/// itself, and healing correctly finds no path around it on a chain.
#[test]
fn device_crash_is_attributed_to_the_device() {
    let (mut t, goal, path) = configured(3, "GRE-IP");
    apply_fault(&mut t.mn.net, FaultKind::DeviceCrash(t.core[1]));

    let mut probe = t.probe_fn();
    let report = Diagnoser::default().diagnose(&mut t.mn, &path, &mut probe);
    assert!(!report.healthy);
    assert_eq!(report.unresponsive, vec![t.core[1]]);
    assert!(
        report.blames_device(t.core[1]),
        "the crashed router must be the prime suspect: {:#?}",
        report.suspects
    );
    assert_eq!(report.prime_suspect().unwrap().confidence_pct, 95);

    let outcome = Healer::default().heal(&mut t.mn, &goal, &path, &report, &mut probe);
    assert!(
        !outcome.healed(),
        "a chain cannot route around a crashed core router"
    );
}

/// Scenario 5 — 100% loss spike on the B–C link (the link stays
/// administratively up, so only counters reveal it).
#[test]
fn loss_spike_blackhole_is_localised_to_the_link() {
    let (mut t, goal, path) = configured(3, "GRE-IP");
    let link = t.core_link(1).expect("B–C core link");
    apply_fault(
        &mut t.mn.net,
        FaultKind::LossSpike {
            link,
            loss_ppm: 1_000_000,
        },
    );

    let mut probe = t.probe_fn();
    let report = Diagnoser::default().diagnose(&mut t.mn, &path, &mut probe);
    assert!(!report.healthy);
    assert!(
        report.blames_link(t.core[1], t.core[2]),
        "the lossy B–C link must be the suspect: {:#?}",
        report.suspects
    );
    assert!(
        t.mn.net.frames_lost() > 0,
        "the loss sampler must account for the drops"
    );

    // Still unrepairable on a chain — but clearing the spike restores
    // delivery without any reconfiguration, which the NM can verify.
    let outcome = Healer::default().heal(&mut t.mn, &goal, &path, &report, &mut probe);
    assert!(!outcome.healed());
    apply_fault(&mut t.mn.net, FaultKind::LossSpike { link, loss_ppm: 0 });
    assert!(t.probe(), "delivery resumes once the loss clears");
}

/// Scenario 5b — *partial* loss spike (50%): some probes survive, so only
/// the rx-shortfall on the far side of the link reveals it.
#[test]
fn partial_loss_spike_is_still_localised_to_the_link() {
    let (mut t, _goal, path) = configured(3, "GRE-IP");
    let link = t.core_link(1).expect("B–C core link");
    apply_fault(
        &mut t.mn.net,
        FaultKind::LossSpike {
            link,
            loss_ppm: 500_000,
        },
    );

    let mut probe = t.probe_fn();
    // More probes than the default so the deterministic sampler is certain
    // to drop at least one and pass at least one.
    let report = Diagnoser::new(8).diagnose(&mut t.mn, &path, &mut probe);
    assert!(!report.healthy);
    assert!(
        report.probes_delivered > 0 && report.probes_delivered < report.probes_sent,
        "a 50% spike should let some probes through: {}/{}",
        report.probes_delivered,
        report.probes_sent
    );
    assert!(
        report.blames_link(t.core[1], t.core[2]),
        "partial loss must still be pinned to the lossy link: {:#?}",
        report.suspects
    );
}

/// Scenario 6 — link flap from a deterministic fault plan.  Diagnosis during
/// the down window localises the link; once the plan restores it, the same
/// probe confirms recovery.  The whole timeline replays from a seed.
#[test]
fn link_flap_is_detected_while_down_and_recovers_when_the_plan_restores_it() {
    let (mut t, goal, path) = configured(3, "GRE-IP");
    let link = t.core_link(0).expect("A–B core link");
    let start = t.mn.net.now() + SimDuration::from_millis(10);
    let plan = FaultPlan::new().flap(
        link,
        start,
        SimDuration::from_millis(500),
        SimDuration::from_millis(500),
        1,
    );
    let mut injector = FaultInjector::new(plan);

    // Advance into the down window.
    t.mn.net.run_for(SimDuration::from_millis(20));
    assert_eq!(injector.apply_due(&mut t.mn.net), 1, "the cut fires");

    let mut probe = t.probe_fn();
    let report = Diagnoser::default().diagnose(&mut t.mn, &path, &mut probe);
    assert!(!report.healthy);
    assert!(report.blames_link(t.core[0], t.core[1]));
    let _ = Healer::default().heal(&mut t.mn, &goal, &path, &report, &mut probe);

    // Advance past the restore; the flap heals itself.
    t.mn.net.run_for(SimDuration::from_millis(600));
    assert_eq!(injector.apply_due(&mut t.mn.net), 1, "the restore fires");
    assert_eq!(injector.pending(), 0);
    let verify = Diagnoser::default().diagnose(&mut t.mn, &path, &mut probe);
    assert!(
        verify.healthy,
        "the path is healthy again after the flap: {verify:#?}"
    );
}

/// Scenario 7 — policy routing flushed on a middle router while a GRE path
/// is active.  (On a 4-router chain the GRE outer endpoints are not on the
/// middle routers' connected subnets, so losing the policy rules really
/// blackholes the tunnel.)  The transit IP module is blamed (NoRoute drops)
/// and the NM heals onto the pure-MPLS path, which crosses the router in
/// the label plane and therefore survives.
#[test]
fn flushed_routing_heals_onto_the_mpls_path() {
    let (mut t, goal, path) = configured(4, "GRE-IP");
    apply_fault(
        &mut t.mn.net,
        FaultKind::Misconfigure(Misconfiguration::FlushPolicyRouting { device: t.core[1] }),
    );

    let mut probe = t.probe_fn();
    let report = Diagnoser::default().diagnose(&mut t.mn, &path, &mut probe);
    assert!(!report.healthy);
    let ip_b = t.core_module(1, &ModuleKind::Ip).unwrap();
    assert!(
        report.blames_module(&ip_b),
        "router B's transit IP module must be the suspect: {:#?}",
        report.suspects
    );

    let outcome = Healer::default().heal(&mut t.mn, &goal, &path, &report, &mut probe);
    assert!(outcome.healed(), "healing must succeed: {outcome:#?}");
    assert_eq!(
        outcome.replacement_label.as_deref(),
        Some("MPLS"),
        "the pure-MPLS path avoids B's IP module entirely"
    );
    assert!(t.probe());
}

/// Telemetry works over the in-band flooding channel too: the same fault
/// scenario diagnoses identically with no out-of-band network at all.
#[test]
fn diagnosis_works_over_the_in_band_channel() {
    let mut t = managed_chain_with(3, InBandChannel::new());
    t.discover();
    let goal = t.vpn_goal();
    let paths = t.mn.nm.find_paths(&goal);
    let path = paths
        .iter()
        .find(|p| p.technology_label() == "GRE-IP")
        .unwrap()
        .clone();
    t.mn.execute_path(&path, &goal);
    assert!(t.probe());

    apply_fault(
        &mut t.mn.net,
        FaultKind::Misconfigure(Misconfiguration::CorruptGreKey {
            device: *t.core.last().unwrap(),
            delta: 3,
        }),
    );
    let mut probe = t.probe_fn();
    let report = Diagnoser::default().diagnose(&mut t.mn, &path, &mut probe);
    assert!(!report.healthy);
    let gre_c = t.core_module(2, &ModuleKind::Gre).unwrap();
    assert!(
        report.blames_module(&gre_c),
        "in-band telemetry reaches the same verdict: {:#?}",
        report.suspects
    );
    // Telemetry traffic is accounted in its own category on the channel.
    let telemetry =
        t.mn.nm_counters()
            .sent_by_category
            .get(&mgmt_channel::MessageCategory::Telemetry)
            .copied()
            .unwrap_or(0);
    assert!(telemetry > 0, "telemetry polls are accounted as Telemetry");
}
