//! Integration tests for the declarative multi-goal API: GoalStore → Plan →
//! Transaction with reconciliation.
//!
//! The acceptance scenarios of the API redesign: two concurrent goals
//! sharing core modules both configure through `reconcile()`; withdrawing
//! one leaves the other carrying traffic; a mid-commit device crash rolls
//! back cleanly leaving no partially-configured modules; and `reconcile()`
//! is idempotent on a converged network.

use conman::core::nm::{Exclusion, GoalStatus, PlanError};
use conman::core::runtime::{ReconcileAction, ReconcileReport, TxnEvent};
use conman::modules::{managed_chain, managed_dual_chain};
use mgmt_channel::OutOfBandChannel;

type Chain = conman::modules::ManagedChain<OutOfBandChannel>;

/// The observable end state of a reconcile scenario, for comparing the
/// batched executor against the per-goal baseline: per-goal statuses (in
/// submission order), the module-usage refcount multiset, how many modules
/// are shared, and end-to-end connectivity.  Module refs and pipe ids are
/// instance-specific, so the comparison is over shapes, not raw ids.
#[derive(Debug, PartialEq)]
struct EndState {
    statuses: Vec<GoalStatus>,
    refcounts: Vec<usize>,
    shared_modules: usize,
    probes: Vec<bool>,
}

fn end_state(t: &mut Chain, report: &ReconcileReport, probes: Vec<bool>) -> EndState {
    let statuses = report.outcomes.iter().map(|o| o.status).collect();
    let mut refcounts: Vec<usize> =
        t.mn.goals
            .module_users()
            .values()
            .map(|g| g.len())
            .collect();
    refcounts.sort_unstable();
    let shared_modules = refcounts.iter().filter(|&&n| n >= 2).count();
    EndState {
        statuses,
        refcounts,
        shared_modules,
        probes,
    }
}

#[test]
fn two_concurrent_goals_share_core_modules_and_withdraw_is_isolated() {
    let mut t = managed_dual_chain(3);
    t.discover();
    let g1 = t.mn.submit(t.vpn_goal());
    let g2 = t.mn.submit(t.vpn_goal2());

    // Dry-run planning before anything is applied: no module is shared yet.
    let plan = t.mn.plan_goal(g2).expect("a path exists");
    assert!(plan.modules_reused.is_empty());
    assert!(!plan.modules_created.is_empty());
    // Planning sent nothing: both goals are still pending.
    assert_eq!(t.mn.goals.status(g1), Some(GoalStatus::Pending));
    assert_eq!(t.mn.goals.status(g2), Some(GoalStatus::Pending));

    // One reconcile pass configures both goals as a single batched
    // transaction (each device staged once, committed once).
    let report = t.mn.reconcile();
    assert!(report.converged(), "both goals active: {report:#?}");
    assert_eq!(report.transactions, 1);
    assert!(report.nm_sent > 0, "the pass reports its message deltas");
    assert!(t.probe(), "customer 1 traffic flows");
    assert!(t.probe2(), "customer 2 traffic flows");

    // The goals share module instances (the ISP core at minimum): the
    // store's reference counts see modules used by both.
    let users = t.mn.goals.module_users();
    let shared: Vec<_> = users.iter().filter(|(_, g)| g.len() == 2).collect();
    assert!(
        !shared.is_empty(),
        "concurrent goals must share core modules: {users:#?}"
    );
    // A fresh dry-run for goal 2's path now reports the sharing.
    let plan = t.mn.plan_goal(g2).expect("a path exists");
    assert!(!plan.modules_reused.is_empty());

    // Withdrawing goal 1 deletes only its own components: modules used by
    // goal 2 are not released, and goal 2 still carries traffic end to end.
    let w = t.mn.withdraw(g1);
    assert!(w.removed);
    assert!(w.teardown_primitives > 0);
    for released in &w.released {
        assert_eq!(
            t.mn.goals.module_refcount(released),
            0,
            "released modules have no surviving users"
        );
    }
    assert!(t.probe2(), "goal 2 survives goal 1's withdraw");
    assert!(!t.probe(), "goal 1's VPN is gone after withdraw");
    assert_eq!(t.mn.goals.len(), 1);
}

#[test]
fn mid_commit_device_crash_rolls_back_cleanly_and_reconcile_retries() {
    let mut t = managed_chain(3);
    t.discover();
    let id = t.mn.submit(t.vpn_goal());

    // Crash the middle router after staging, right before its commit.
    let b = t.core[1];
    t.mn.txn_hook = Some(Box::new(move |event, net| {
        if let TxnEvent::BeforeCommit { device, .. } = event {
            if *device == b {
                net.set_device_up(b, false);
            }
        }
    }));
    let report = t.mn.reconcile();
    let outcome = report.outcome(id).expect("goal reconciled");
    assert_eq!(outcome.action, ReconcileAction::ExecuteFailed);
    assert_eq!(t.mn.goals.status(id), Some(GoalStatus::Pending));
    assert!(!t.probe(), "the goal is not configured");
    t.mn.txn_hook = None;

    // No partially-configured modules anywhere that answers: every commit
    // that landed was rolled back, every staged script aborted.
    for d in [t.core[0], t.core[2]] {
        let actual = t.mn.show_actual(d).expect("device answers");
        for (name, module) in actual {
            assert!(
                module.pipes.is_empty(),
                "{name} kept pipes after rollback: {:?}",
                module.pipes
            );
            assert!(
                module.switch_rules.is_empty(),
                "{name} kept switch rules after rollback: {:?}",
                module.switch_rules
            );
        }
    }

    // The crashed router reboots; the goal is still desired, so the next
    // reconcile converges it.
    t.mn.net.set_device_up(b, true);
    let report = t.mn.reconcile();
    assert!(report.converged(), "{report:#?}");
    assert!(t.probe(), "traffic flows after the retry");
}

#[test]
fn two_goals_share_one_edge_gre_module_and_withdraw_stays_isolated() {
    use conman::core::ids::ModuleKind;

    // Force both goals onto GRE-IP paths so they *must* share the edge GRE
    // modules: the multi-tunnel GRE module carries one tunnel per goal
    // (keyed by pipe, distinct key material per tunnel) instead of failing
    // the second goal's transaction.
    let mut t = managed_dual_chain(3);
    t.discover();
    let g1 = t.mn.submit(t.vpn_goal());
    let g2 = t.mn.submit(t.vpn_goal2());
    for id in [g1, g2] {
        let desired = t.mn.goals.get(id).unwrap().desired.clone();
        let paths = t.mn.nm.find_paths(&desired);
        let gre = paths
            .iter()
            .find(|p| p.technology_label() == "GRE-IP")
            .expect("a GRE-IP path exists")
            .clone();
        let plan = t.mn.plan_for_path(id, &gre).expect("plan");
        assert!(t.mn.execute_plan(plan).committed, "goal {id} commits");
    }
    assert!(t.probe(), "goal 1 carries traffic");
    assert!(t.probe2(), "goal 2 carries traffic");

    // Both goals reference the same edge GRE module instances.
    for core in [t.core[0], t.core[2]] {
        let gre = t.mn.nm.find_module(core, &ModuleKind::Gre).unwrap();
        assert_eq!(
            t.mn.goals.module_refcount(&gre),
            2,
            "both goals share the GRE module on {core}"
        );
    }
    // Two distinct tunnels (distinct keys) are configured on each edge.
    let ingress = t.mn.net.device(t.core[0]).unwrap();
    assert_eq!(ingress.config.tunnels.len(), 2);
    let keys: std::collections::BTreeSet<_> = ingress
        .config
        .tunnels
        .values()
        .map(|tun| tun.okey)
        .collect();
    assert_eq!(keys.len(), 2, "concurrent tunnels use distinct keys");

    // Withdrawing one goal tears down only its own tunnel: the sibling
    // keeps its pipe, its key and its traffic.
    let w = t.mn.withdraw(g1);
    assert!(w.removed);
    assert!(w.teardown_primitives > 0);
    assert!(t.probe2(), "goal 2 survives goal 1's withdraw");
    assert!(!t.probe(), "goal 1's VPN is gone");
    let ingress = t.mn.net.device(t.core[0]).unwrap();
    assert_eq!(ingress.config.tunnels.len(), 1, "one tunnel survives");
    let gre = t.mn.nm.find_module(t.core[0], &ModuleKind::Gre).unwrap();
    assert_eq!(t.mn.goals.module_refcount(&gre), 1);
}

#[test]
fn withdraw_heavy_pass_stages_each_device_once_for_the_whole_batch() {
    use mgmt_channel::MessageCategory;

    // Eight goals over the same three devices; withdrawing them all at
    // once must coalesce every teardown into ONE StageBatch/CommitBatch
    // pair per device — commands proportional to devices, not goals.
    let mut t = managed_chain(3);
    t.discover();
    let ids: Vec<_> = (0..8)
        .map(|k| t.mn.submit(conman_bench_goal(&t, k)))
        .collect();
    let report = t.mn.reconcile();
    assert!(report.converged());
    let devices_touched = 3;

    t.mn.reset_counters();
    let outcomes = t.mn.withdraw_many(&ids);
    assert!(outcomes.iter().all(|o| o.removed));
    assert!(outcomes.iter().all(|o| o.teardown_primitives > 0));
    let commands =
        t.mn.nm_counters()
            .sent_by_category
            .get(&MessageCategory::Command)
            .copied()
            .unwrap_or(0);
    assert_eq!(
        commands,
        2 * devices_touched,
        "one StageBatch + one CommitBatch per device for all 8 teardowns"
    );
    assert!(t.mn.goals.is_empty());
}

/// A synthetic goal between the chain's edge interfaces for a distinct
/// site-class pair (mirrors `conman-bench`'s generator without the crate
/// dependency).
fn conman_bench_goal(t: &Chain, k: usize) -> conman::core::nm::ConnectivityGoal {
    let mut goal = t.vpn_goal();
    let k = k + 1;
    goal.src_class = format!("C{k}-S1");
    goal.dst_class = format!("C{k}-S2");
    goal.resolved.remove("C1-S1");
    goal.resolved.remove("C1-S2");
    goal.resolved
        .insert(format!("C{k}-S1"), format!("10.{k}.1.0/24"));
    goal.resolved
        .insert(format!("C{k}-S2"), format!("10.{k}.2.0/24"));
    goal
}

#[test]
fn update_heavy_pass_coalesces_stale_teardowns_into_one_batch() {
    let mut t = managed_chain(3);
    t.discover();
    let ids: Vec<_> = (0..4)
        .map(|k| t.mn.submit(conman_bench_goal(&t, k)))
        .collect();
    assert!(t.mn.reconcile().converged());

    // Update every goal: the next pass tears all four stale configurations
    // down as ONE batched lenient transaction and applies the replacements
    // as ONE batched configuration transaction.
    for (k, id) in ids.iter().enumerate() {
        assert!(t.mn.update_goal(*id, conman_bench_goal(&t, k + 20)));
    }
    let report = t.mn.reconcile();
    assert!(report.converged(), "{report:#?}");
    assert_eq!(
        report.transactions, 2,
        "one coalesced teardown batch + one configuration batch"
    );
}

#[test]
fn reconcile_is_idempotent_on_a_converged_network() {
    let mut t = managed_dual_chain(3);
    t.discover();
    t.mn.submit(t.vpn_goal());
    t.mn.submit(t.vpn_goal2());
    let first = t.mn.reconcile();
    assert!(first.converged());
    assert_eq!(first.transactions, 1, "one batched transaction per pass");

    // A second pass has nothing to do: no transactions, no new messages.
    t.mn.reset_counters();
    let second = t.mn.reconcile();
    assert!(second.converged());
    assert_eq!(second.transactions, 0);
    assert_eq!(second.nm_sent, 0, "a converged pass reports zero sends");
    assert_eq!(second.nm_received, 0);
    let counters = t.mn.nm_counters();
    assert!(
        counters.sent_by_category.is_empty(),
        "a converged reconcile sends nothing: {counters:?}"
    );
    assert!(t.probe() && t.probe2());
}

#[test]
fn reconcile_with_probes_verifies_and_repairs_degraded_goals() {
    let mut t = managed_dual_chain(3);
    t.discover();
    let g1 = t.mn.submit(t.vpn_goal());
    let g2 = t.mn.submit(t.vpn_goal2());
    let mut p1 = t.probe_fn();
    let mut p2 = t.probe2_fn();
    let report = t.mn.reconcile_with(|mn, id| {
        if id == g1 {
            Some(p1(mn))
        } else if id == g2 {
            Some(p2(mn))
        } else {
            None
        }
    });
    assert!(report.converged(), "{report:#?}");

    // Wipe the middle router's data-plane state behind the NM's back: the
    // goals look Active but their probes fail, so a verifying reconcile
    // degrades and re-applies them in the same pass.
    conman::netsim::fault::apply_fault(
        &mut t.mn.net,
        conman::netsim::fault::FaultKind::Misconfigure(
            conman::netsim::fault::Misconfiguration::ClearMplsState { device: t.core[1] },
        ),
    );
    let mut p1 = t.probe_fn();
    let mut p2 = t.probe2_fn();
    let report = t.mn.reconcile_with(|mn, id| {
        if id == g1 {
            Some(p1(mn))
        } else if id == g2 {
            Some(p2(mn))
        } else {
            None
        }
    });
    assert!(report.transactions > 0, "repair work happened");
    assert!(report.converged(), "{report:#?}");
    assert!(t.probe() && t.probe2());
}

#[test]
fn per_goal_probe_attribution_separates_concurrent_goals() {
    let mut t = managed_dual_chain(3);
    t.discover();
    let g1 = t.mn.submit(t.vpn_goal());
    let g2 = t.mn.submit(t.vpn_goal2());
    let mut p1 = t.probe_fn();
    let mut p2 = t.probe2_fn();
    let report = t.mn.reconcile_with(|mn, id| {
        if id == g1 {
            Some(p1(mn))
        } else if id == g2 {
            Some(p2(mn))
        } else {
            None
        }
    });
    assert!(report.converged());

    // The verification probes ran inside per-goal flow windows: the middle
    // router's tallies are attributed to each owning goal separately.
    let b = t.core[1];
    let f1 = t.mn.net.flow_counters(b, g1.0);
    let f2 = t.mn.net.flow_counters(b, g2.0);
    assert!(f1.forwarded > 0, "goal 1's probe crossed the core: {f1:?}");
    assert!(f2.forwarded > 0, "goal 2's probe crossed the core: {f2:?}");
    // And the source hosts only appear in their own goal's flow.
    assert!(t.mn.net.flow_counters(t.host1, g1.0).originated > 0);
    assert!(t.mn.net.flow_counters(t.host1, g2.0).is_empty());
    let (host3, _) = t.second_pair.unwrap();
    assert!(t.mn.net.flow_counters(host3, g2.0).originated > 0);
    assert!(t.mn.net.flow_counters(host3, g1.0).is_empty());
}

#[test]
fn goal_lifecycle_plan_failure_update_and_retry() {
    let mut t = managed_chain(3);
    t.discover();
    let id = t.mn.submit(t.vpn_goal());

    // Exclude every module of the (unavoidable) middle router: no path can
    // avoid the suspects, so the reconciler's suspect-fallback drops the
    // exclusions and *reinstalls through* them — the autonomic answer to a
    // blamed module whose state was lost rather than whose hardware died.
    let excluded: std::collections::BTreeSet<_> = t.mn.nm.abstractions[&t.core[1]]
        .iter()
        .map(|a| Exclusion::Module(a.name.clone()))
        .collect();
    t.mn.goals.mark_degraded(id, excluded);
    let report = t.mn.reconcile();
    let outcome = report.outcome(id).unwrap();
    assert_eq!(outcome.action, ReconcileAction::Applied);
    assert_eq!(t.mn.goals.status(id), Some(GoalStatus::Active));
    assert!(
        t.mn.goals.get(id).unwrap().excluded.is_empty(),
        "the reinstall cleared the unavoidable exclusions"
    );
    assert!(t.probe());
    // Converged goals are left alone by later passes, and `retry` has
    // nothing to re-arm.
    let report = t.mn.reconcile();
    assert_eq!(report.transactions, 0);
    assert!(!t.mn.goals.retry(id));

    // An update returns the goal to Pending and the next reconcile
    // re-applies it (teardown + fresh transaction).
    let goal = t.vpn_goal();
    assert!(t.mn.update_goal(id, goal));
    assert_eq!(t.mn.goals.status(id), Some(GoalStatus::Pending));
    let report = t.mn.reconcile();
    let outcome = report.outcome(id).unwrap();
    assert_eq!(outcome.action, ReconcileAction::Reapplied);
    assert!(report.converged());
    assert!(t.probe());
}

// ---------------------------------------------------------------------------
// Batched vs per-goal equivalence: both executors must produce identical
// goal statuses, module refcounts and data-plane connectivity — only the
// message shape differs.
// ---------------------------------------------------------------------------

#[test]
fn report_message_counters_match_channel_deltas() {
    let mut t = managed_dual_chain(3);
    t.discover();
    t.mn.submit(t.vpn_goal());
    t.mn.submit(t.vpn_goal2());
    t.mn.reset_counters();
    let report = t.mn.reconcile();
    let counters = t.mn.nm_counters();
    assert_eq!(
        report.nm_sent, counters.sent,
        "ReconcileReport.nm_sent is the pass's channel delta"
    );
    assert_eq!(report.nm_received, counters.received);
    assert!(report.nm_sent > 0);
}

#[test]
fn batched_and_per_goal_reconcile_are_equivalent_on_fresh_goals() {
    let run = |batched: bool| {
        let mut t = managed_dual_chain(3);
        t.discover();
        t.mn.submit(t.vpn_goal());
        t.mn.submit(t.vpn_goal2());
        let report = if batched {
            t.mn.reconcile()
        } else {
            t.mn.reconcile_per_goal()
        };
        let probes = vec![t.probe(), t.probe2()];
        let sent = report.nm_sent;
        (end_state(&mut t, &report, probes), sent)
    };
    let (batched, batched_sent) = run(true);
    let (per_goal, per_goal_sent) = run(false);
    assert_eq!(batched, per_goal, "identical end state");
    assert_eq!(batched.statuses, vec![GoalStatus::Active; 2]);
    assert!(batched.probes.iter().all(|&p| p));
    assert!(
        batched_sent < per_goal_sent,
        "batching sends fewer messages: {batched_sent} vs {per_goal_sent}"
    );
}

#[test]
fn batched_and_per_goal_equivalent_under_mid_commit_crash() {
    // Crash the middle router right before its commit: in both modes every
    // affected goal rolls back cleanly and parks Pending, and no partial
    // configuration survives anywhere that answers.
    let run = |batched: bool| {
        let mut t = managed_dual_chain(3);
        t.discover();
        t.mn.submit(t.vpn_goal());
        t.mn.submit(t.vpn_goal2());
        let b = t.core[1];
        t.mn.txn_hook = Some(Box::new(move |event, net| {
            if let TxnEvent::BeforeCommit { device, .. } = event {
                if *device == b {
                    net.set_device_up(b, false);
                }
            }
        }));
        let pipe_base_before = t.mn.goals.peek_pipe_base();
        let report = if batched {
            t.mn.reconcile()
        } else {
            t.mn.reconcile_per_goal()
        };
        t.mn.txn_hook = None;
        // Neither executor may leak pipe-id blocks for goals that failed to
        // commit (the batched pass releases blocks it allocated up front).
        assert_eq!(
            t.mn.goals.peek_pipe_base(),
            pipe_base_before,
            "failed pass must not consume pipe-id space (batched={batched})"
        );
        for d in [t.core[0], t.core[2]] {
            let actual = t.mn.show_actual(d).expect("device answers");
            for (name, module) in actual {
                assert!(
                    module.pipes.is_empty() && module.switch_rules.is_empty(),
                    "{name} kept state after rollback (batched={batched})"
                );
            }
        }
        let probes = vec![t.probe(), t.probe2()];
        (end_state(&mut t, &report, probes), t)
    };
    let (batched, _) = run(true);
    let (per_goal, mut t) = run(false);
    assert_eq!(batched, per_goal, "identical end state after the crash");
    assert_eq!(batched.statuses, vec![GoalStatus::Pending; 2]);
    assert!(batched.probes.iter().all(|&p| !p));

    // The crashed router reboots; the next batched pass converges both.
    t.mn.net.set_device_up(t.core[1], true);
    let report = t.mn.reconcile();
    assert!(report.converged(), "{report:#?}");
    assert!(t.probe() && t.probe2());
}

#[test]
fn one_goal_failing_mid_batch_rolls_back_without_disturbing_siblings() {
    use conman::core::ids::{ModuleKind, PipeId};
    use conman::core::nm::{DeviceScript, ScriptSet};
    use conman::core::primitives::{PipeSpec, Primitive};

    let mut t = managed_chain(3);
    t.discover();
    let g1 = t.mn.submit(t.vpn_goal());
    let g2 = t.mn.submit(t.vpn_goal());
    let plan1 = t.mn.plan_goal(g1).expect("a path exists");

    // Craft a segment for g2 that *stages* fine (both modules exist on the
    // egress edge router) but *fails its commit*: a GRE up pipe without the
    // mandatory performance trade-offs is rejected at execution time.  g1
    // and g2 then share a CommitBatch on that device, and only g2 may roll
    // back.
    let egress = t.core[2];
    let gre = t.mn.nm.find_module(egress, &ModuleKind::Gre).unwrap();
    let ip = t.mn.nm.find_module(egress, &ModuleKind::Ip).unwrap();
    let bad_spec = PipeSpec {
        pipe: PipeId(5000), // far away from g1's block
        upper: ip,
        lower: gre, // a GRE *up* pipe without trade-offs fails at commit
        peer_upper: None,
        peer_lower: None,
        tradeoffs: vec![],
        initiate: false,
        resolved: Default::default(),
    };
    let bad = ScriptSet {
        scripts: vec![DeviceScript {
            device: egress,
            device_alias: "C".into(),
            primitives: vec![Primitive::CreatePipe(bad_spec)],
            rendered: vec!["create (pipe, <GRE,C,?>, ...)".into()],
        }],
        pipe_count: 1,
    };

    let outcome = t.mn.run_batch(&[(g1, &plan1.scripts), (g2, &bad)]);
    assert_eq!(outcome.committed, vec![g1], "the sibling goal commits");
    assert_eq!(outcome.failed.len(), 1);
    assert_eq!(outcome.failed[0].0, g2);
    assert!(
        outcome.failed[0].1.contains("commit failed"),
        "g2 failed at commit: {}",
        outcome.failed[0].1
    );

    // g1's configuration is live end to end; g2's partial creates (the ETH
    // side of the rejected pipe) were rolled back via the teardown mirror.
    assert!(t.probe(), "the sibling goal carries traffic");
    let actual = t.mn.show_actual(egress).expect("device answers");
    for (name, module) in actual {
        assert!(
            !module.pipes.contains(&PipeId(5000)),
            "{name} kept the failed goal's pipe after rollback"
        );
    }
}

#[test]
fn opposite_direction_goals_fall_back_to_per_goal_transactions() {
    use conman::core::nm::{DeviceScript, ScriptSet};
    use conman::core::primitives::Primitive;

    // Two goals traversing the same devices in opposite directions cannot
    // share one batch commit order (each wants the other's initiator side
    // committed first); the executor must detect this and run the
    // conflicting goal as its own strict transaction instead of silently
    // breaking its peer negotiations.
    let mut t = managed_chain(3);
    t.discover();
    let g1 = t.mn.submit(t.vpn_goal());
    let g2 = t.mn.submit(t.vpn_goal());
    let (a, c) = (t.core[0], t.core[2]);
    let seg = |device, alias: &str| DeviceScript {
        device,
        device_alias: alias.into(),
        primitives: vec![Primitive::ShowActual],
        rendered: vec!["showActual ()".into()],
    };
    let fwd = ScriptSet {
        scripts: vec![seg(a, "A"), seg(c, "C")],
        pipe_count: 0,
    };
    let rev = ScriptSet {
        scripts: vec![seg(c, "C"), seg(a, "A")],
        pipe_count: 0,
    };
    let outcome = t.mn.run_batch(&[(g1, &fwd), (g2, &rev)]);
    assert_eq!(outcome.committed, vec![g1, g2], "both goals commit");
    assert!(outcome.failed.is_empty());
    assert_eq!(
        outcome.fallback.len(),
        1,
        "exactly one direction fell back to a per-goal transaction: {outcome:?}"
    );
}

// ---------------------------------------------------------------------------
// Identifier-space guard rails at the bench ceiling.
// ---------------------------------------------------------------------------

#[test]
fn pipe_space_exhaustion_fails_the_goal_cleanly() {
    let mut t = managed_chain(3);
    t.discover();
    let id = t.mn.submit(t.vpn_goal());
    // A 512-goal pass worth of blocks stays far below the cap...
    let per_goal_slots = 32u32;
    t.mn.goals.reserve_pipes_through(512 * per_goal_slots);
    assert!(t.mn.goals.check_pipe_block(per_goal_slots).is_ok());
    // ...but a store near the derived-id cap refuses to plan: the goal
    // parks Failed with a clean error instead of wrapping route-table ids.
    t.mn.goals
        .reserve_pipes_through(conman::core::GoalStore::MAX_PIPE_ID - 2);
    let err = t.mn.plan_goal(id).expect_err("planning must refuse");
    assert!(
        matches!(err, PlanError::PipeSpaceExhausted { .. }),
        "unexpected error: {err}"
    );
    let report = t.mn.reconcile();
    let outcome = report.outcome(id).expect("goal reconciled");
    assert_eq!(outcome.action, ReconcileAction::PlanFailed);
    assert_eq!(t.mn.goals.status(id), Some(GoalStatus::Failed));
    assert!(outcome
        .error
        .as_deref()
        .unwrap_or_default()
        .contains("pipe-id space exhausted"));
    // Nothing was sent for the unplannable goal.
    assert_eq!(report.transactions, 0);
}
