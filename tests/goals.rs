//! Integration tests for the declarative multi-goal API: GoalStore → Plan →
//! Transaction with reconciliation.
//!
//! The acceptance scenarios of the API redesign: two concurrent goals
//! sharing core modules both configure through `reconcile()`; withdrawing
//! one leaves the other carrying traffic; a mid-commit device crash rolls
//! back cleanly leaving no partially-configured modules; and `reconcile()`
//! is idempotent on a converged network.

use conman::core::nm::GoalStatus;
use conman::core::runtime::{ReconcileAction, TxnEvent};
use conman::modules::{managed_chain, managed_dual_chain};

#[test]
fn two_concurrent_goals_share_core_modules_and_withdraw_is_isolated() {
    let mut t = managed_dual_chain(3);
    t.discover();
    let g1 = t.mn.submit(t.vpn_goal());
    let g2 = t.mn.submit(t.vpn_goal2());

    // Dry-run planning before anything is applied: no module is shared yet.
    let plan = t.mn.plan_goal(g2).expect("a path exists");
    assert!(plan.modules_reused.is_empty());
    assert!(!plan.modules_created.is_empty());
    // Planning sent nothing: both goals are still pending.
    assert_eq!(t.mn.goals.status(g1), Some(GoalStatus::Pending));
    assert_eq!(t.mn.goals.status(g2), Some(GoalStatus::Pending));

    // One reconcile pass configures both goals transactionally.
    let report = t.mn.reconcile();
    assert!(report.converged(), "both goals active: {report:#?}");
    assert_eq!(report.transactions, 2);
    assert!(t.probe(), "customer 1 traffic flows");
    assert!(t.probe2(), "customer 2 traffic flows");

    // The goals share module instances (the ISP core at minimum): the
    // store's reference counts see modules used by both.
    let users = t.mn.goals.module_users();
    let shared: Vec<_> = users.iter().filter(|(_, g)| g.len() == 2).collect();
    assert!(
        !shared.is_empty(),
        "concurrent goals must share core modules: {users:#?}"
    );
    // A fresh dry-run for goal 2's path now reports the sharing.
    let plan = t.mn.plan_goal(g2).expect("a path exists");
    assert!(!plan.modules_reused.is_empty());

    // Withdrawing goal 1 deletes only its own components: modules used by
    // goal 2 are not released, and goal 2 still carries traffic end to end.
    let w = t.mn.withdraw(g1);
    assert!(w.removed);
    assert!(w.teardown_primitives > 0);
    for released in &w.released {
        assert_eq!(
            t.mn.goals.module_refcount(released),
            0,
            "released modules have no surviving users"
        );
    }
    assert!(t.probe2(), "goal 2 survives goal 1's withdraw");
    assert!(!t.probe(), "goal 1's VPN is gone after withdraw");
    assert_eq!(t.mn.goals.len(), 1);
}

#[test]
fn mid_commit_device_crash_rolls_back_cleanly_and_reconcile_retries() {
    let mut t = managed_chain(3);
    t.discover();
    let id = t.mn.submit(t.vpn_goal());

    // Crash the middle router after staging, right before its commit.
    let b = t.core[1];
    t.mn.txn_hook = Some(Box::new(move |event, net| {
        if let TxnEvent::BeforeCommit { device, .. } = event {
            if *device == b {
                net.set_device_up(b, false);
            }
        }
    }));
    let report = t.mn.reconcile();
    let outcome = report.outcome(id).expect("goal reconciled");
    assert_eq!(outcome.action, ReconcileAction::ExecuteFailed);
    assert_eq!(t.mn.goals.status(id), Some(GoalStatus::Pending));
    assert!(!t.probe(), "the goal is not configured");
    t.mn.txn_hook = None;

    // No partially-configured modules anywhere that answers: every commit
    // that landed was rolled back, every staged script aborted.
    for d in [t.core[0], t.core[2]] {
        let actual = t.mn.show_actual(d).expect("device answers");
        for (name, module) in actual {
            assert!(
                module.pipes.is_empty(),
                "{name} kept pipes after rollback: {:?}",
                module.pipes
            );
            assert!(
                module.switch_rules.is_empty(),
                "{name} kept switch rules after rollback: {:?}",
                module.switch_rules
            );
        }
    }

    // The crashed router reboots; the goal is still desired, so the next
    // reconcile converges it.
    t.mn.net.set_device_up(b, true);
    let report = t.mn.reconcile();
    assert!(report.converged(), "{report:#?}");
    assert!(t.probe(), "traffic flows after the retry");
}

#[test]
fn reconcile_is_idempotent_on_a_converged_network() {
    let mut t = managed_dual_chain(3);
    t.discover();
    t.mn.submit(t.vpn_goal());
    t.mn.submit(t.vpn_goal2());
    let first = t.mn.reconcile();
    assert!(first.converged());
    assert_eq!(first.transactions, 2);

    // A second pass has nothing to do: no transactions, no new messages.
    t.mn.reset_counters();
    let second = t.mn.reconcile();
    assert!(second.converged());
    assert_eq!(second.transactions, 0);
    let counters = t.mn.nm_counters();
    assert!(
        counters.sent_by_category.is_empty(),
        "a converged reconcile sends nothing: {counters:?}"
    );
    assert!(t.probe() && t.probe2());
}

#[test]
fn reconcile_with_probes_verifies_and_repairs_degraded_goals() {
    let mut t = managed_dual_chain(3);
    t.discover();
    let g1 = t.mn.submit(t.vpn_goal());
    let g2 = t.mn.submit(t.vpn_goal2());
    let mut p1 = t.probe_fn();
    let mut p2 = t.probe2_fn();
    let report = t.mn.reconcile_with(|mn, id| {
        if id == g1 {
            Some(p1(mn))
        } else if id == g2 {
            Some(p2(mn))
        } else {
            None
        }
    });
    assert!(report.converged(), "{report:#?}");

    // Wipe the middle router's data-plane state behind the NM's back: the
    // goals look Active but their probes fail, so a verifying reconcile
    // degrades and re-applies them in the same pass.
    conman::netsim::fault::apply_fault(
        &mut t.mn.net,
        conman::netsim::fault::FaultKind::Misconfigure(
            conman::netsim::fault::Misconfiguration::ClearMplsState { device: t.core[1] },
        ),
    );
    let mut p1 = t.probe_fn();
    let mut p2 = t.probe2_fn();
    let report = t.mn.reconcile_with(|mn, id| {
        if id == g1 {
            Some(p1(mn))
        } else if id == g2 {
            Some(p2(mn))
        } else {
            None
        }
    });
    assert!(report.transactions > 0, "repair work happened");
    assert!(report.converged(), "{report:#?}");
    assert!(t.probe() && t.probe2());
}

#[test]
fn per_goal_probe_attribution_separates_concurrent_goals() {
    let mut t = managed_dual_chain(3);
    t.discover();
    let g1 = t.mn.submit(t.vpn_goal());
    let g2 = t.mn.submit(t.vpn_goal2());
    let mut p1 = t.probe_fn();
    let mut p2 = t.probe2_fn();
    let report = t.mn.reconcile_with(|mn, id| {
        if id == g1 {
            Some(p1(mn))
        } else if id == g2 {
            Some(p2(mn))
        } else {
            None
        }
    });
    assert!(report.converged());

    // The verification probes ran inside per-goal flow windows: the middle
    // router's tallies are attributed to each owning goal separately.
    let b = t.core[1];
    let f1 = t.mn.net.flow_counters(b, g1.0);
    let f2 = t.mn.net.flow_counters(b, g2.0);
    assert!(f1.forwarded > 0, "goal 1's probe crossed the core: {f1:?}");
    assert!(f2.forwarded > 0, "goal 2's probe crossed the core: {f2:?}");
    // And the source hosts only appear in their own goal's flow.
    assert!(t.mn.net.flow_counters(t.host1, g1.0).originated > 0);
    assert!(t.mn.net.flow_counters(t.host1, g2.0).is_empty());
    let (host3, _) = t.second_pair.unwrap();
    assert!(t.mn.net.flow_counters(host3, g2.0).originated > 0);
    assert!(t.mn.net.flow_counters(host3, g1.0).is_empty());
}

#[test]
fn goal_lifecycle_plan_failure_update_and_retry() {
    let mut t = managed_chain(3);
    t.discover();
    let id = t.mn.submit(t.vpn_goal());

    // Exclude every module of the (unavoidable) middle router: planning
    // must fail and the goal parks as Failed.
    let excluded: std::collections::BTreeSet<_> = t.mn.nm.abstractions[&t.core[1]]
        .iter()
        .map(|a| a.name.clone())
        .collect();
    t.mn.goals.mark_degraded(id, excluded);
    let report = t.mn.reconcile();
    let outcome = report.outcome(id).unwrap();
    assert_eq!(outcome.action, ReconcileAction::PlanFailed);
    assert_eq!(t.mn.goals.status(id), Some(GoalStatus::Failed));
    // Failed goals are left alone by later passes.
    let report = t.mn.reconcile();
    assert_eq!(report.transactions, 0);

    // Clearing the exclusions and retrying converges the goal.
    t.mn.goals.get_mut(id).unwrap().excluded.clear();
    assert!(t.mn.goals.retry(id));
    let report = t.mn.reconcile();
    assert!(report.converged());
    assert!(t.probe());

    // An update returns the goal to Pending and the next reconcile
    // re-applies it (teardown + fresh transaction).
    let goal = t.vpn_goal();
    assert!(t.mn.update_goal(id, goal));
    assert_eq!(t.mn.goals.status(id), Some(GoalStatus::Pending));
    let report = t.mn.reconcile();
    let outcome = report.outcome(id).unwrap();
    assert_eq!(outcome.action, ReconcileAction::Reapplied);
    assert!(report.converged());
    assert!(t.probe());
}
