//! Debugging with CONMan (§III-C.2), now as a closed loop: configure the
//! VPN, inject a fault, let the `Diagnoser` localise it from per-module
//! counter deltas along the configured path, and let the `Healer`
//! reconfigure an alternative path and verify the repair end to end.
//!
//! ```text
//! cargo run --example debugging
//! ```

use conman::diagnose::{Diagnoser, Healer};
use conman::modules::managed_chain;
use conman::netsim::fault::{apply_fault, FaultKind, Misconfiguration};

fn main() {
    let mut testbed = managed_chain(3);
    testbed.discover();
    let goal = testbed.vpn_goal();
    let paths = testbed.mn.nm.find_paths(&goal);
    let gre = paths
        .iter()
        .find(|p| p.technology_label() == "GRE-IP")
        .expect("GRE path exists")
        .clone();
    testbed.mn.execute_path(&gre, &goal);
    println!(
        "configured: {} across {} routers",
        gre.technology_label(),
        testbed.core.len()
    );

    // Healthy VPN.
    let ok = testbed.probe();
    println!("before fault: delivered = {ok}");

    // Fault injection: corrupt the GRE receive key on the egress router —
    // the classic silent misconfiguration the paper cites.  Only counters
    // can reveal it: the topology map still looks perfect.
    let egress = *testbed.core.last().expect("chain has routers");
    apply_fault(
        &mut testbed.mn.net,
        FaultKind::Misconfigure(Misconfiguration::CorruptGreKey {
            device: egress,
            delta: 17,
        }),
    );
    println!(
        "\ninjected: GRE ikey corrupted on router {}",
        testbed.mn.nm.device_alias(egress)
    );

    // Diagnosis: probe end to end, snapshot per-module counters along the
    // configured module path, and localise from the deltas.
    let mut probe = testbed.probe_fn();
    let report = Diagnoser::default().diagnose(&mut testbed.mn, &gre, &mut probe);
    println!(
        "\ndiagnosis: {}/{} probes delivered",
        report.probes_delivered, report.probes_sent
    );
    for s in &report.suspects {
        println!("  suspect ({:>3}%): {:?}", s.confidence_pct, s.target);
        for e in &s.evidence {
            println!("           {e}");
        }
    }
    let prime = report.prime_suspect().expect("a suspect was found");
    assert!(
        matches!(&prime.target, conman::diagnose::SuspectTarget::Module(m) if m.device == egress),
        "the egress GRE module should be blamed"
    );

    // Self-healing: tear the GRE path down, re-plan with the suspect
    // excluded, execute the alternative and verify it with probes.
    let outcome = Healer::default().heal(&mut testbed.mn, &goal, &gre, &report, &mut probe);
    println!(
        "\nself-healing: {} candidate path(s); replacement = {}; {} delete primitive(s) issued",
        outcome.candidates,
        outcome.replacement_label.as_deref().unwrap_or("none"),
        outcome.teardown_primitives,
    );
    assert!(
        outcome.healed(),
        "the NM must route around the corrupted module"
    );

    let after = testbed.probe();
    println!("after repair: delivered = {after}");
    assert!(after);
    println!("\n(the paper, §III-C: the NM \"can systematically debug the configuration\n problem by determining the status of each module in the path\" — here it\n also repaired it.)");
}
