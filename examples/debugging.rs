//! Debugging with CONMan (§III-C.2 flavour): after configuring the VPN, the
//! NM can read each module's *actual* state with `showActual`, inject a
//! fault (cut a core link), observe that customer traffic stops, and localise
//! the failure from the topology map it maintains.
//!
//! ```text
//! cargo run --example debugging
//! ```

use conman::modules::managed_chain;
use netsim::link::LinkId;

fn main() {
    let mut testbed = managed_chain(3);
    testbed.discover();
    let goal = testbed.vpn_goal();
    let paths = testbed.mn.nm.find_paths(&goal);
    let gre = paths
        .iter()
        .find(|p| p.technology_label() == "GRE-IP")
        .unwrap()
        .clone();
    testbed.mn.execute_path(&gre, &goal);

    // Healthy VPN.
    let (ok, _) = testbed.send_site1_to_site2(b"healthy");
    println!("before fault: delivered = {ok}");

    // showActual at the ingress router: the NM sees the tunnel and routes the
    // GRE and IP modules installed, without understanding GRE keys itself.
    let ingress = testbed.core[0];
    if let Some(actual) = testbed.mn.show_actual(ingress) {
        println!("\nshowActual(<RouterA>):");
        for (module, state) in &actual {
            if !state.switch_rules.is_empty() || !state.perf_report.is_empty() {
                println!("  {module}: rules={:?} perf={:?}", state.switch_rules, state.perf_report);
            }
        }
    }

    // Fault injection: cut the A--B core link (the wire between the second
    // and third links of the topology is the first core link).
    let core_link = testbed
        .mn
        .net
        .links()
        .iter()
        .find(|l| {
            l.endpoints
                .iter()
                .all(|e| testbed.core.contains(&e.device))
        })
        .map(|l| l.id)
        .unwrap_or(LinkId(0));
    testbed.mn.net.set_link_enabled(core_link, false);
    let (after, _) = testbed.send_site1_to_site2(b"after fault");
    println!("\nafter cutting core link {:?}: delivered = {after}", core_link);

    // Fault localisation from the NM's own topology map: which adjacency
    // does the disabled link correspond to?
    let link = testbed.mn.net.link(core_link).unwrap();
    let names: Vec<String> = link
        .endpoints
        .iter()
        .map(|e| testbed.mn.nm.device_alias(e.device))
        .collect();
    println!("NM localises the failure to the physical pipe between routers {:?}", names);
    println!("(the paper: \"errors like a wire getting cut off ... will show up in the topology map that the NM maintains\")");

    assert!(ok && !after);
}
