//! Declarative multi-goal management: two concurrent VPN goals over one ISP.
//!
//! The dual-customer chain runs a second site pair behind the same customer
//! routers.  Both goals are declared up front; one `reconcile()` pass plans
//! and transactionally executes each of them in disjoint pipe-id blocks
//! while sharing the ISP core module instances.  Withdrawing one goal then
//! deletes only its own components — the reference-counted shared modules
//! keep carrying the survivor's traffic.
//!
//! ```text
//! cargo run --example goals
//! ```

use conman::modules::managed_dual_chain;

fn main() {
    let mut testbed = managed_dual_chain(3);
    testbed.discover();

    // Declare both customers' goals: same edge interfaces, different site
    // classes (customer 1: 10.0.1/10.0.2, customer 2: 10.0.3/10.0.4).
    let g1 = testbed.mn.submit(testbed.vpn_goal());
    let g2 = testbed.mn.submit(testbed.vpn_goal2());
    println!("declared {g1} and {g2}");

    // Dry-run the second goal before anything runs: every module would be a
    // first use.
    let plan = testbed.mn.plan_goal(g2).expect("path exists");
    println!(
        "pre-reconcile plan for {g2}: {} created / {} reused module(s)",
        plan.modules_created.len(),
        plan.modules_reused.len()
    );

    // One reconcile pass converges both goals.
    let report = testbed.mn.reconcile();
    println!(
        "reconcile: {} transaction(s), {} goal(s) active",
        report.transactions,
        report.active()
    );
    assert!(testbed.probe(), "customer 1 traffic flows");
    assert!(testbed.probe2(), "customer 2 traffic flows");

    // The goals share module instances: the store's reference counts say so,
    // and a fresh dry run reports the sharing.
    let shared = testbed
        .mn
        .goals
        .module_users()
        .iter()
        .filter(|(_, goals)| goals.len() == 2)
        .count();
    println!("module instances shared by both goals: {shared}");
    let plan = testbed.mn.plan_goal(g2).expect("path exists");
    println!(
        "post-reconcile plan for {g2}: {} created / {} reused module(s)",
        plan.modules_created.len(),
        plan.modules_reused.len()
    );

    // Withdraw customer 1: a transactional teardown of its components only.
    let outcome = testbed.mn.withdraw(g1);
    println!(
        "withdrew {g1}: {} delete primitive(s), {} module(s) released",
        outcome.teardown_primitives,
        outcome.released.len()
    );
    assert!(!testbed.probe(), "customer 1's VPN is gone");
    assert!(testbed.probe2(), "customer 2 is untouched");
    println!("customer 2 still carries traffic after the withdraw");
}
