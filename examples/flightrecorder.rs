//! Post-mortem from the dump alone: run the recorded mesh link-cut
//! scenario, keep nothing but the trace-journal JSON, and reconstruct the
//! whole fault story — the blamed link, the one-pass reroute, every staged
//! device — without re-running anything or touching live state.
//!
//! ```text
//! cargo run --example flightrecorder
//! ```

use conman::obs::{Postmortem, TraceKind};
use conman_bench::recorded_mesh_link_cut;

fn main() {
    // The link-suspect-aware reroute scenario with the recorder on: eight
    // goals converge on the 2×3 redundant mesh, the journal is cleared, a
    // core link on the applied path is cut, and the loop detects,
    // localises and reroutes. Everything it did is in the journal.
    let rec = recorded_mesh_link_cut(3, 8);
    println!(
        "live run: converged={} cut_link={:?} repair_passes={}",
        rec.converged, rec.cut_link, rec.repair_passes
    );

    // Simulate the crash-dump workflow: throw the live state away and keep
    // only the serialized journal, as if it had been read back from disk.
    let dump = rec.journal.clone();
    println!(
        "journal dump: {} bytes, {} events\n",
        dump.len(),
        rec.snapshot.journal_events
    );

    // Before trusting the dump, lint it: the conformance checker replays
    // the event stream through the loop's protocol state machine (spans
    // balanced, every staged device resolved exactly once in its epoch, no
    // verify before its pass's commits, time monotone).
    let events = Postmortem::events_from_json(&dump).expect("journal dump parses");
    let violations = conman::analyze::check_journal(&events);
    assert!(
        violations.is_empty(),
        "the recorded run's journal must conform: {violations:?}"
    );
    println!("conformance check: {} events, 0 violations", events.len());

    // Reconstruct the story purely from the dump.
    let pm = Postmortem::from_json(&dump).expect("journal dump parses");
    println!("post-mortem (from the dump alone):");
    println!("  ticks observed:   {}", pm.ticks);
    println!("  degraded goals:   {:?}", pm.degraded_goals);
    println!("  blamed devices:   {:?}", pm.blamed_devices);
    println!("  blamed links:     {:?}", pm.blamed_links);
    println!(
        "  repair passes:    {} ({} effective)",
        pm.repair_passes.len(),
        pm.effective_passes()
    );
    for (i, pass) in pm.repair_passes.iter().enumerate() {
        if pass.staged.is_empty() {
            continue;
        }
        println!(
            "    pass {}: staged {:?}, committed {:?}",
            i + 1,
            pass.staged,
            pass.committed
        );
    }
    println!("  staged devices:   {:?}", pm.staged_devices);
    println!("  verified goals:   {:?}", pm.verified_goals);

    // A few raw spans, to show the causal chain the post-mortem walks.
    println!("\nsample of the causal chain:");
    for ev in events.iter().filter(|e| {
        matches!(
            e.kind,
            TraceKind::Diagnosed { .. } | TraceKind::PlanChosen { .. } | TraceKind::Verify { .. }
        )
    }) {
        println!("  seq={:>3} parent={:?} {:?}", ev.seq, ev.parent, ev.kind);
    }

    // Cross-check the reconstruction against the live ground truth.
    let blamed_ok = pm.blamed_links.contains(&rec.cut_link);
    let staged_ok = rec
        .new_path_devices
        .iter()
        .all(|d| pm.staged_devices.contains(d));
    println!(
        "\ncross-check: blamed link matches cut={} / one-pass reroute={} / all repaired-path devices staged={}",
        blamed_ok,
        pm.effective_passes() == 1,
        staged_ok
    );
    assert!(blamed_ok && staged_ok && pm.effective_passes() == 1);
}
