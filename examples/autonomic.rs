//! The autonomic control loop, end to end: declare goals as *events*, let
//! the event-driven NM runtime converge them, verify the management plane
//! goes silent, then break the network and watch the loop detect, localise
//! (from per-goal flow deltas, under the other goals' live traffic) and
//! repair — with no operator call after setup.
//!
//! ```text
//! cargo run --example autonomic
//! ```

use conman::core::nm::PathFinderLimits;
use conman::core::runtime::{ControlLoop, GoalEndpoints, LoopConfig};
use conman::diagnose::AutonomicClient;
use conman::modules::managed_fanout_chain;
use conman::netsim::fault::{apply_fault, FaultKind, Misconfiguration};

fn main() {
    // A 6-router ISP chain with four customer pairs, each backed by real
    // hosts — every goal's health is judged from its own delivered
    // traffic.
    let n = 6;
    let goals = 4;
    let mut t = managed_fanout_chain(n, goals);
    t.discover();
    t.mn.goals.limits = PathFinderLimits {
        max_steps: 3 * n + 16,
        max_paths: 32,
    };

    // The loop: 100ms ticks, telemetry every tick, two probes per goal per
    // round, any loss degrades.  The conman-diagnose Diagnoser/Healer pair
    // plugs in as the loop's diagnosis client.
    let mut cl = ControlLoop::new(&t.mn, LoopConfig::default())
        .with_client(Box::new(AutonomicClient::new(2)));

    // Operator intent arrives as events on the loop's stream.
    for k in 0..goals {
        let (src, dst, dst_ip) = t.fanout_probe(k);
        cl.submit(t.fanout_goal(k), Some(GoalEndpoints { src, dst, dst_ip }));
    }
    let setup = cl.run_until_converged(&mut t.mn, 10);
    println!(
        "setup: {} goals converged in {} tick(s)",
        goals,
        setup.ticks.len()
    );
    for rec in t.mn.goals.iter() {
        let label = rec
            .applied()
            .map(|a| a.path.technology_label())
            .unwrap_or_default();
        println!("  {}: {} over {}", rec.id, rec.status, label);
    }

    // A converged loop is silent: health runs on customer traffic, so
    // quiescent ticks send zero management messages.
    for _ in 0..3 {
        let tick = cl.tick(&mut t.mn);
        println!(
            "tick {:>2} @ {}: quiescent={} (NM sent {}, received {})",
            tick.tick,
            tick.at,
            tick.quiescent(),
            tick.nm_sent,
            tick.nm_received
        );
    }

    // Disaster: the mid-chain router loses its dynamic state — label maps
    // and policy tables — as after a control-plane reload.  Nobody calls
    // the NM.
    let victim = t.core[n / 2];
    println!(
        "\nfault injected: {} lost its label and policy-routing state",
        t.mn.nm.device_alias(victim)
    );
    apply_fault(
        &mut t.mn.net,
        FaultKind::Misconfigure(Misconfiguration::ClearMplsState { device: victim }),
    );
    apply_fault(
        &mut t.mn.net,
        FaultKind::Misconfigure(Misconfiguration::FlushPolicyRouting { device: victim }),
    );

    // The loop detects the degradation on its next health round, localises
    // it per goal from flow-attributed counter deltas, and repairs the
    // whole fleet in one batched pass.
    let run = cl.run_until_converged(&mut t.mn, 8);
    for tick in &run.ticks {
        if tick.degraded.is_empty() && tick.repair.is_none() {
            println!("tick {:>2}: quiescent again", tick.tick);
            continue;
        }
        println!(
            "tick {:>2}: degraded={:?} (epoch {})",
            tick.tick, tick.degraded, tick.epoch
        );
        for (goal, diagnosis) in &tick.diagnosed {
            println!("          {goal} diagnosis: {}", diagnosis.summary);
        }
        if let Some(repair) = &tick.repair {
            println!(
                "          repair pass: {} active / {} transaction(s) / {} NM msgs",
                repair.active(),
                repair.transactions,
                tick.nm_sent
            );
        }
    }
    println!(
        "\ndetected on tick {:?}, repaired on tick {:?}, zero operator calls",
        run.first_detection(),
        run.first_repair()
    );
    for rec in t.mn.goals.iter() {
        let label = rec
            .applied()
            .map(|a| a.path.technology_label())
            .unwrap_or_default();
        println!("  {}: {} over {}", rec.id, rec.status, label);
    }
    let all_ok = (0..goals).all(|k| t.probe_pair(k));
    println!("all customer pairs carry traffic again: {all_ok}");
}
