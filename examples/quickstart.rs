//! Quickstart: the whole CONMan loop in one page.
//!
//! Build the paper's Figure 4 testbed (two customer sites across a
//! three-router ISP), let the NM discover the devices' module abstractions,
//! map the high-level VPN goal onto module-level paths, execute the chosen
//! path's CONMan scripts, and verify that customer traffic actually flows.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use conman::modules::managed_chain;

fn main() {
    // 1. Build the managed testbed (data plane + management agents + NM).
    let mut testbed = managed_chain(3);

    // 2. Devices announce their physical connectivity; the NM runs
    //    showPotential everywhere and builds its picture of the network.
    testbed.discover();
    println!("managed devices: {}", testbed.mn.nm.device_count());

    // 3. The human manager's goal: connectivity between the customer-facing
    //    interfaces of routers A and C for customer-1 site-1/site-2 traffic.
    let goal = testbed.vpn_goal();

    // 4. The NM enumerates every protocol-sane module path and picks one.
    let outcome = testbed.mn.configure(&goal);
    println!("paths found by the NM: {}", outcome.paths.len());
    for p in &outcome.paths {
        println!("  - {:18} ({} pipes)", p.technology_label(), p.pipe_count());
    }
    let chosen = outcome.chosen.expect("a path was chosen");
    println!(
        "chosen: {} — scripts:\n{}",
        chosen.technology_label(),
        outcome.scripts.render()
    );

    // 5. Verify the data plane: a site-1 host sends a datagram to a site-2
    //    host and it arrives, encapsulated inside the ISP.
    let (delivered, encaps) = testbed.send_site1_to_site2(b"hello through the VPN");
    println!("delivered across the VPN: {delivered}");
    println!("frames observed leaving the ingress router:");
    for e in encaps.iter().take(4) {
        println!("  {e}");
    }
    assert!(delivered);
}
