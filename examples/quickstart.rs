//! Quickstart: the whole CONMan loop in one page — declarative style.
//!
//! Build the paper's Figure 4 testbed (two customer sites across a
//! three-router ISP), let the NM discover the devices' module abstractions,
//! *declare* the high-level VPN goal (`submit`), inspect the NM's dry-run
//! `Plan`, and let `reconcile()` drive the network to the desired state
//! with a two-phase transaction.  Then verify that customer traffic
//! actually flows.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use conman::modules::managed_chain;

fn main() {
    // 1. Build the managed testbed (data plane + management agents + NM).
    let mut testbed = managed_chain(3);

    // 2. Devices announce their physical connectivity; the NM runs
    //    showPotential everywhere and builds its picture of the network.
    testbed.discover();
    println!("managed devices: {}", testbed.mn.nm.device_count());

    // 3. The human manager's goal: connectivity between the customer-facing
    //    interfaces of routers A and C for customer-1 site-1/site-2 traffic.
    //    Declaring it gives it an identity and a lifecycle — nothing is
    //    configured yet.
    let goal_id = testbed.mn.submit(testbed.vpn_goal());
    println!(
        "declared goal {goal_id}: {}",
        testbed.mn.goals.status(goal_id).unwrap()
    );

    // 4. Dry run: the NM enumerates protocol-sane module paths, picks the
    //    best one and generates its scripts — without sending a message.
    let plan = testbed.mn.plan_goal(goal_id).expect("a path exists");
    println!(
        "plan: {} over {} device(s), {} module(s) first-used",
        plan.path.technology_label(),
        plan.scripts.scripts.len(),
        plan.modules_created.len()
    );
    println!("scripts:\n{}", plan.scripts.render());

    // 5. Reconcile: every stored goal is driven to its desired state.  The
    //    scripts execute as a two-phase transaction (stage everywhere,
    //    commit device by device, roll back on any failure).
    let report = testbed.mn.reconcile();
    println!(
        "reconciled: goal is {} after {} transaction(s)",
        testbed.mn.goals.status(goal_id).unwrap(),
        report.transactions
    );

    // 6. Verify the data plane: a site-1 host sends a datagram to a site-2
    //    host and it arrives, encapsulated inside the ISP.
    let (delivered, encaps) = testbed.send_site1_to_site2(b"hello through the VPN");
    println!("delivered across the VPN: {delivered}");
    println!("frames observed leaving the ingress router:");
    for e in encaps.iter().take(4) {
        println!("  {e}");
    }
    assert!(delivered);

    // 7. Reconcile is idempotent: a converged network needs no messages.
    let report = testbed.mn.reconcile();
    println!(
        "second reconcile: {} transaction(s) (converged)",
        report.transactions
    );
    assert_eq!(report.transactions, 0);
}
