//! # conman — umbrella crate for the CONMan reproduction
//!
//! Re-exports the workspace crates so examples, integration tests and
//! downstream users can depend on a single crate:
//!
//! * [`netsim`] — the deterministic packet-level network simulator
//!   (the data-plane substrate standing in for the paper's Linux testbed),
//! * [`mgmt_channel`] — the out-of-band and in-band management channels,
//! * [`core`] (`conman-core`) — module abstraction, primitives, management
//!   agents and the Network Manager,
//! * [`modules`] (`conman-modules`) — the ETH / IP / GRE / MPLS / VLAN
//!   protocol modules and the managed testbeds,
//! * [`legacy`] (`legacy-config`) — the "today" configuration baseline and
//!   the Table V classifier.
//!
//! See `examples/quickstart.rs` for a end-to-end tour: build the Figure 4
//! testbed, let the NM discover it, map the VPN goal to module paths and
//! configure the chosen one, then verify customer traffic actually flows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use conman_core as core;
pub use conman_modules as modules;
pub use legacy_config as legacy;
pub use mgmt_channel;
pub use netsim;
