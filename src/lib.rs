//! # conman — umbrella crate for the CONMan reproduction
//!
//! Re-exports the workspace crates so examples, integration tests and
//! downstream users can depend on a single crate.
//!
//! ## Module map
//!
//! | Crate | Re-export | What lives there |
//! |-------|-----------|------------------|
//! | `netsim` | [`netsim`] | Deterministic packet-level simulator: codecs (ETH/ARP/IP/GRE/MPLS/VLAN/UDP/ICMP), forwarding engine, topologies, packet traces, per-goal flow-attribution windows ([`netsim::stats::FlowCounters`]) — and [`netsim::fault`], the deterministic fault-injection layer (link cuts/flaps, loss spikes, device crashes, misconfigurations). |
//! | `mgmt-channel` | [`mgmt_channel`] | The out-of-band and in-band management channels, per-device message accounting (Table VI) and the periodic telemetry schedule. |
//! | `conman-core` | [`core`] | Protocol-independent CONMan: module abstraction (Table II) with per-pipe [`CounterSnapshot`](core::CounterSnapshot)s, primitives (Table I) plus the Stage/Commit/Abort transaction wire protocol — and its batched extension (StageBatch/CommitBatch/AbortBatch carrying per-goal [`ScriptSegment`](core::primitives::ScriptSegment)s, RelayBatch coalescing module relays per device per round) — management agents, the NM (topology map, potential graph, path finder with suspect exclusion, script generation) and the declarative runtime: a [`GoalStore`](core::GoalStore) of goals with identity and lifecycle (`submit`/`update`/`withdraw`, `Pending → Active → Degraded → Repairing → Failed`) plus an incrementally maintained module→goals usage index, dry-run [`Plan`](core::Plan)s reporting created-vs-shared modules in pipe-id blocks guarded against derived-id exhaustion, and the [`reconcile()`](core::ManagedNetwork::reconcile) loop that drives every stored goal to its desired state as **one batched two-phase transaction per pass** (each device staged once, committed once; per-goal rollback inside the batch; [`reconcile_per_goal()`](core::ManagedNetwork::reconcile_per_goal) keeps the one-transaction-per-goal baseline). |
//! | `conman-modules` | [`modules`] | The ETH / IP / GRE / MPLS / VLAN protocol modules over the simulated data plane, plus the managed testbeds of Figures 2, 4 and 9 (including the dual-customer multi-goal chain) with diagnosis probe hooks. |
//! | `conman-diagnose` | [`diagnose`] | The closed-loop manager of §III-C: telemetry collection over the management channel, counter-delta fault localisation ([`diagnose::Diagnoser`] → [`diagnose::FaultReport`]) and self-healing as a reconciler client ([`diagnose::Healer`]: mark the goal degraded with suspects excluded, transactional teardown, re-plan, verify — e.g. GRE-IP fallback when the MPLS core dies). |
//! | `legacy-config` | [`legacy`] | The "today" configuration baseline (Figures 7a/8a/9a) and the Table V generic-vs-specific classifier. |
//!
//! ## Tours
//!
//! * `examples/quickstart.rs` — build the Figure 4 testbed, discover it,
//!   declare the VPN goal (`submit`), inspect the dry-run `Plan`, and let
//!   `reconcile()` configure it transactionally; verify traffic flows.
//! * `examples/goals.rs` — two concurrent goals on the dual-customer chain:
//!   shared core modules, disjoint pipe-id blocks, reference-counted
//!   withdraw leaving the surviving goal intact.
//! * `examples/debugging.rs` — the closed loop: inject a fault, let the
//!   [`diagnose::Diagnoser`] localise it from counter deltas along the
//!   configured path, and let the [`diagnose::Healer`] reconfigure an
//!   alternative path and verify the repair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use conman_core as core;
pub use conman_diagnose as diagnose;
pub use conman_modules as modules;
pub use legacy_config as legacy;
pub use mgmt_channel;
pub use netsim;
