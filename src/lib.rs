//! # conman — umbrella crate for the CONMan reproduction
//!
//! Re-exports the workspace crates so examples, integration tests and
//! downstream users can depend on a single crate.
//!
//! ## Module map
//!
//! | Crate | Re-export | What lives there |
//! |-------|-----------|------------------|
//! | `netsim` | [`netsim`] | Deterministic packet-level simulator: codecs (ETH/ARP/IP/GRE/MPLS/VLAN/UDP/ICMP), forwarding engine, topologies, packet traces — and [`netsim::fault`], the deterministic fault-injection layer (link cuts/flaps, loss spikes, device crashes, misconfigurations). |
//! | `mgmt-channel` | [`mgmt_channel`] | The out-of-band and in-band management channels, per-device message accounting (Table VI) and the periodic telemetry schedule. |
//! | `conman-core` | [`core`] | Protocol-independent CONMan: module abstraction (Table II) with per-pipe [`CounterSnapshot`](core::CounterSnapshot)s, primitives (Table I), management agents, the NM (topology map, potential graph, path finder with suspect exclusion, script generation) and the runtime orchestration loop. |
//! | `conman-modules` | [`modules`] | The ETH / IP / GRE / MPLS / VLAN protocol modules over the simulated data plane, plus the managed testbeds of Figures 2, 4 and 9 with diagnosis probe hooks. |
//! | `conman-diagnose` | [`diagnose`] | The closed-loop manager of §III-C: telemetry collection over the management channel, counter-delta fault localisation ([`diagnose::Diagnoser`] → [`diagnose::FaultReport`]) and self-healing reconfiguration ([`diagnose::Healer`] — e.g. GRE-IP fallback when the MPLS core dies). |
//! | `legacy-config` | [`legacy`] | The "today" configuration baseline (Figures 7a/8a/9a) and the Table V generic-vs-specific classifier. |
//!
//! ## Tours
//!
//! * `examples/quickstart.rs` — build the Figure 4 testbed, discover it,
//!   map the VPN goal to module paths, configure the chosen one and verify
//!   customer traffic flows.
//! * `examples/debugging.rs` — the closed loop: inject a fault, let the
//!   [`diagnose::Diagnoser`] localise it from counter deltas along the
//!   configured path, and let the [`diagnose::Healer`] reconfigure an
//!   alternative path and verify the repair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use conman_core as core;
pub use conman_diagnose as diagnose;
pub use conman_modules as modules;
pub use legacy_config as legacy;
pub use mgmt_channel;
pub use netsim;
