//! # conman — umbrella crate for the CONMan reproduction
//!
//! Re-exports the workspace crates so examples, integration tests and
//! downstream users can depend on a single crate.
//!
//! ## Module map
//!
//! | Crate | Re-export | What lives there |
//! |-------|-----------|------------------|
//! | `netsim` | [`netsim`] | Deterministic packet-level simulator: codecs (ETH/ARP/IP/GRE/MPLS/VLAN/UDP/ICMP), forwarding engine, topologies (the fan-out chain backing hundreds of goals with real host pairs, and the multipath family — [`netsim::topology::isp_mesh_fanout`]'s 2×k redundant core with cross-links and [`netsim::topology::isp_ring_fanout`]'s core cycle — on which a blamed link has a genuine alternative), packet traces, per-goal flow-attribution windows ([`netsim::stats::FlowCounters`]), the steppable tick clock ([`netsim::clock::StepClock`]) the autonomic loop and telemetry schedule share — and [`netsim::fault`], the deterministic fault-injection layer (link cuts/flaps, loss spikes, device crashes, device-wide and *per-goal* misconfigurations). |
//! | `mgmt-channel` | [`mgmt_channel`] | The out-of-band and in-band management channels, per-device message accounting (Table VI) and the periodic telemetry schedule — now an *event source* (`take_due` hands the loop its telemetry events) — plus [`mgmt_channel::codec`], the little-endian length-prefixed [`Writer`](mgmt_channel::codec::Writer)/[`Reader`](mgmt_channel::codec::Reader) primitives under the zero-copy batch wire format. |
//! | `conman-core` | [`core`] | Protocol-independent CONMan: module abstraction (Table II) with per-pipe [`CounterSnapshot`](core::CounterSnapshot)s, primitives (Table I) plus the Stage/Commit/Abort transaction wire protocol — its batched extension (StageBatch/CommitBatch/AbortBatch carrying per-goal [`ScriptSegment`](core::primitives::ScriptSegment)s, RelayBatch coalescing, batched lenient teardowns) and the flow-telemetry messages (`PollFlows` pull, `SubscribeFlows`/`FlowReport` push) — management agents, the NM (topology map, potential graph, path finder with suspect exclusion at both granularities — excluded modules are never entered and excluded *links* never crossed, see [`Exclusion`](core::nm::Exclusion) — script generation) and the declarative runtime: a [`GoalStore`](core::GoalStore) of goals with identity, lifecycle (`Pending → Active → Degraded → Repairing → Failed`, with a repair-attempt budget so unrepairable goals park `Failed`), per-goal typed exclusion sets that age out once a repair verifies and an incrementally maintained module→goals index; dry-run [`Plan`](core::Plan)s in guarded pipe-id blocks; [`reconcile()`](core::ManagedNetwork::reconcile) executing every pass as one batched two-phase transaction (stale teardowns and `withdraw_many` coalesce the same way); and the **autonomic layer** — [`runtime::event`](core::runtime::event)'s unified [`NmEvent`](core::NmEvent) stream and the event-driven [`ControlLoop`](core::ControlLoop) (per-goal health from window-based flow counters, pluggable diagnosis, epoch-tagged batched repair, zero management messages when converged).  The hot path is the **raw-speed engine**: [`reconcile()`](core::ManagedNetwork::reconcile) plans goals in parallel over one hoisted potential graph (`std::thread::scope` workers with reusable search scratch and per-worker search memoisation, merged in deterministic goal-id order; [`reconcile_sequential`](core::ManagedNetwork::reconcile_sequential) is the kept byte-equivalence oracle, `tests/raw_speed.rs` the proof), and [`core::wire`] is the zero-copy length-prefixed binary codec for the six batch wire messages, selected per network by [`WireCodec`](core::WireCodec) and auto-detected on decode — borrowed `&[Primitive]` segments are encoded straight to the wire and validated in place by the agent. |
//! | `conman-modules` | [`modules`] | The ETH / IP / GRE / MPLS / VLAN protocol modules over the simulated data plane, plus the managed testbeds of Figures 2, 4 and 9 (including the dual-customer multi-goal chain) and the multipath mesh/ring testbeds (`managed_mesh_fanout` / `managed_ring_fanout`) with diagnosis probe hooks. |
//! | `conman-diagnose` | [`diagnose`] | The closed-loop manager of §III-C: telemetry collection, **per-goal flow-delta fault localisation** ([`diagnose::Diagnoser`] frontier-walks the goal's own `FlowCounters` deltas, so the right device is blamed even under other goals' background traffic; module counters only refine the drop reason), self-healing as a reconciler client ([`diagnose::Healer`], whose `exclusions` is the **single** suspect→exclusion mapping — blamed links become traversal-level link exclusions) and [`diagnose::AutonomicClient`], which plugs the pair into the control loop as its diagnosis stage and reports the blamed link for the loop's reroute. |
//! | `conman-obs` | [`obs`] | The flight recorder: a causally-linked structured trace journal (tick → health probe → diagnosis frontier walk → repair pass → per-device stage/commit → verify spans, timestamped with **simulated** time so the same seeded scenario dumps byte-identical journals), a metrics registry (counters / gauges / log₂-bucket histograms) with a serialisable [`ObsSnapshot`](obs::ObsSnapshot), per-goal/per-device telemetry history ring buffers with windowed slope/variance queries, and [`Postmortem`](obs::Postmortem) — which reconstructs the blamed link, the repair passes and every staged device from a journal dump alone. [`Recorder::disabled()`](obs::Recorder::disabled) is the default no-op hot path; `experiments obs` proves its cost envelope in `BENCH_obs.json`. |
//! | `conman-analyze` | [`analyze`] | Static analysis over the management plane's artefacts, with no runtime dependency beyond `conman-obs`: the **pre-flight batch verifier** ([`analyze::verify_batch`] — pipe-id blocks pairwise disjoint and within budget, every script set mirrored by its teardown in reverse order, per-device commit order acyclic across the batch, module refcount claims consistent with the store's module→goals index, no planned path crossing its own exclusion set) and the **journal conformance checker** ([`analyze::check_journal`] — a protocol state machine over the flight recorder's dump: spans balanced, every staged device resolved exactly once within its epoch, no verify before its pass's commits, timestamps monotone, epochs strictly increasing).  Both return typed [`analyze::Violation`] lists with provenance.  `reconcile()` and `run_batch` self-check through the verifier under `debug_assertions`; [`core::ManagedNetwork::verify_plans`] is the explicit entry point; CI's `analyze` step replays every smoke-dumped journal through the checker. |
//! | `legacy-config` | [`legacy`] | The "today" configuration baseline (Figures 7a/8a/9a) and the Table V generic-vs-specific classifier. |
//!
//! ## Tours
//!
//! * `examples/quickstart.rs` — build the Figure 4 testbed, discover it,
//!   declare the VPN goal (`submit`), inspect the dry-run `Plan`, and let
//!   `reconcile()` configure it transactionally; verify traffic flows.
//! * `examples/goals.rs` — two concurrent goals on the dual-customer chain:
//!   shared core modules, disjoint pipe-id blocks, reference-counted
//!   withdraw leaving the surviving goal intact.
//! * `examples/debugging.rs` — the closed loop: inject a fault, let the
//!   [`diagnose::Diagnoser`] localise it from counter deltas along the
//!   configured path, and let the [`diagnose::Healer`] reconfigure an
//!   alternative path and verify the repair.
//! * `examples/autonomic.rs` — the autonomic control loop end to end:
//!   goals arrive as events, the fleet converges, the management plane
//!   goes silent, a mid-chain router loses its state, and the loop
//!   detects, localises (per-goal flow deltas under live background
//!   traffic) and repairs everything in one batched pass — zero operator
//!   calls.
//! * `examples/flightrecorder.rs` — post-mortem from the dump alone: run
//!   the recorded mesh link-cut scenario, throw the live state away, and
//!   reconstruct the blamed link, the one-pass reroute and every staged
//!   device purely from the trace journal JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use conman_analyze as analyze;
pub use conman_core as core;
pub use conman_diagnose as diagnose;
pub use conman_modules as modules;
pub use conman_obs as obs;
pub use legacy_config as legacy;
pub use mgmt_channel;
pub use netsim;
